#include "solvers/relax.h"

#include <algorithm>
#include <cmath>

#include "grid/level.h"
#include "grid/packed_kernels.h"

namespace pbmg::solvers {

std::string to_string(RelaxKind kind) {
  switch (kind) {
    case RelaxKind::kSor: return "point_rb";
    case RelaxKind::kJacobi: return "jacobi";
    case RelaxKind::kLineX: return "line_x";
    case RelaxKind::kLineY: return "line_y";
    case RelaxKind::kLineZebraAlt: return "line_zebra_alt";
  }
  throw InvalidArgument("to_string: invalid RelaxKind");
}

RelaxKind parse_relax_kind(const std::string& name) {
  if (name == "point_rb") return RelaxKind::kSor;
  if (name == "jacobi") return RelaxKind::kJacobi;
  if (name == "line_x") return RelaxKind::kLineX;
  if (name == "line_y") return RelaxKind::kLineY;
  if (name == "line_zebra_alt") return RelaxKind::kLineZebraAlt;
  throw InvalidArgument(
      "unknown relaxation kind '" + name +
      "' (expected point_rb|jacobi|line_x|line_y|line_zebra_alt)");
}

double omega_opt(int n) {
  PBMG_CHECK(n >= 3, "omega_opt: n must be >= 3");
  const double h = mesh_width(n);
  return 2.0 / (1.0 + std::sin(M_PI * h));
}

namespace {

RelaxTunables& mutable_relax_tunables() {
  static RelaxTunables tunables;
  return tunables;
}

}  // namespace

const RelaxTunables& relax_tunables() { return mutable_relax_tunables(); }

void validate_relax_tunables(const RelaxTunables& tunables) {
  PBMG_CHECK(tunables.recurse_omega > 0.0 && tunables.recurse_omega < 2.0,
             "relax tunables: recurse_omega must be in (0, 2)");
  PBMG_CHECK(tunables.omega_scale >= 0.1 && tunables.omega_scale <= 1.5,
             "relax tunables: omega_scale must be in [0.1, 1.5]");
  // A deserialized byte is not necessarily a valid enumerator; to_string
  // throws for anything outside the enum.
  (void)to_string(tunables.smoother);
  grid::validate_kernel_policy(tunables.kernels);
}

void set_relax_tunables(const RelaxTunables& tunables) {
  validate_relax_tunables(tunables);
  mutable_relax_tunables() = tunables;
}

double scaled_omega_opt(int n, double scale) {
  return std::min(std::max(omega_opt(n) * scale, 0.05), 1.999);
}

double tuned_omega_opt(int n) {
  return scaled_omega_opt(n, relax_tunables().omega_scale);
}

double tuned_recurse_omega() { return relax_tunables().recurse_omega; }

ScopedRelaxTunables::ScopedRelaxTunables(const RelaxTunables& tunables)
    : previous_(relax_tunables()) {
  set_relax_tunables(tunables);
}

ScopedRelaxTunables::~ScopedRelaxTunables() {
  mutable_relax_tunables() = previous_;
}

void sor_sweep(Grid2D& x, const Grid2D& b, double omega,
               rt::Scheduler& sched) {
  PBMG_CHECK(is_valid_grid_size(x.n()), "sor_sweep: grid size must be 2^k+1");
  PBMG_CHECK(x.n() == b.n(), "sor_sweep: grid size mismatch");
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double quarter_omega = 0.25 * omega;
  const double keep = 1.0 - omega;
  // parity 0 = "red" cells ((i + j) even), parity 1 = "black".
  for (int parity = 0; parity <= 1; ++parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            const double* up = x.row(i - 1);
            double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = b.row(i);
            const int j0 = 1 + ((i + 1 + parity) & 1);
            for (int j = j0; j < n - 1; j += 2) {
              mid[j] = keep * mid[j] +
                       quarter_omega * (h2 * rhs[j] + up[j] + down[j] +
                                        mid[j - 1] + mid[j + 1]);
            }
          }
        });
  }
}

void jacobi_sweep(Grid2D& x, const Grid2D& b, double omega, Grid2D& scratch,
                  rt::Scheduler& sched) {
  PBMG_CHECK(is_valid_grid_size(x.n()), "jacobi_sweep: grid size must be 2^k+1");
  PBMG_CHECK(x.n() == b.n() && x.n() == scratch.n(),
             "jacobi_sweep: grid size mismatch");
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double quarter_omega = 0.25 * omega;
  const double keep = 1.0 - omega;
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* up = x.row(i - 1);
          const double* mid = x.row(i);
          const double* down = x.row(i + 1);
          const double* rhs = b.row(i);
          double* out = scratch.row(i);
          for (int j = 1; j < n - 1; ++j) {
            out[j] = keep * mid[j] +
                     quarter_omega * (h2 * rhs[j] + up[j] + down[j] +
                                      mid[j - 1] + mid[j + 1]);
          }
        }
      });
  // The sweep only wrote scratch's interior; carry the ring over before the
  // swap so boundary data survives.
  scratch.copy_boundary_from(x);
  x.swap(scratch);
}

namespace {

/// 9-point SOR needs four colours: diagonal neighbours share the red-black
/// parity (i+j changes by 0 or 2 across a corner), so a two-colour sweep
/// would race same-colour updates under the row-parallel scheduler.  With
/// colours (i mod 2, j mod 2) every stencil neighbour lies in a different
/// class, restoring the frozen-reads guarantee — the sweep is bitwise
/// deterministic under any thread count, like the red-black point sweeps.
void sor_sweep_nine(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                    double omega, rt::Scheduler& sched) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  for (int color = 0; color < 4; ++color) {
    const int pi = color >> 1;  // row parity of this colour class
    const int pj = color & 1;   // column parity
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, pi, pj](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            if ((i & 1) != pi) continue;
            const double* up = x.row(i - 1);
            double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = b.row(i);
            const grid::NinePointRows rows(op, i);
            const int j0 = 1 + ((1 + pj) & 1);
            for (int j = j0; j < n - 1; j += 2) {
              const double diag = rows.center[j] + ch2;
              PBMG_NUM_ASSERT(diag > 0.0,
                              "sor_sweep: non-positive stencil diagonal");
              const double nb = rows.neighbour_sum(up, mid, down, j);
              mid[j] = keep * mid[j] + omega * (h2 * rhs[j] + nb) / diag;
            }
          }
        });
  }
}

void jacobi_sweep_nine(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                       double omega, Grid2D& scratch, rt::Scheduler& sched) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* up = x.row(i - 1);
          const double* mid = x.row(i);
          const double* down = x.row(i + 1);
          const double* rhs = b.row(i);
          const grid::NinePointRows rows(op, i);
          double* out = scratch.row(i);
          for (int j = 1; j < n - 1; ++j) {
            const double diag = rows.center[j] + ch2;
            PBMG_NUM_ASSERT(diag > 0.0,
                            "jacobi_sweep: non-positive stencil diagonal");
            const double nb = rows.neighbour_sum(up, mid, down, j);
            out[j] = keep * mid[j] + omega * (h2 * rhs[j] + nb) / diag;
          }
        }
      });
  scratch.copy_boundary_from(x);
  x.swap(scratch);
}

}  // namespace

void sor_sweep(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
               double omega, rt::Scheduler& sched,
               const grid::KernelPolicy& kernels) {
  if (op.is_poisson()) {
    sor_sweep(x, b, omega, sched);
    return;
  }
  PBMG_CHECK(is_valid_grid_size(x.n()), "sor_sweep: grid size must be 2^k+1");
  PBMG_CHECK(x.n() == b.n(), "sor_sweep: grid size mismatch");
  PBMG_CHECK(op.n() == x.n(), "sor_sweep: operator/grid size mismatch");
  if (kernels.layout == grid::StencilLayout::kPacked) {
    grid::packed_sor_sweep(op, x, b, omega, sched, kernels.simd_width);
    return;
  }
  if (op.is_nine_point()) {
    sor_sweep_nine(op, x, b, omega, sched);
    return;
  }
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  for (int parity = 0; parity <= 1; ++parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            const double* up = x.row(i - 1);
            double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = b.row(i);
            const double* axr = ax.row(i);
            const double* ay_up = ay.row(i - 1);
            const double* ay_dn = ay.row(i);
            const int j0 = 1 + ((i + 1 + parity) & 1);
            for (int j = j0; j < n - 1; j += 2) {
              const double aw = axr[j - 1];
              const double ae = axr[j];
              const double an = ay_up[j];
              const double as = ay_dn[j];
              const double diag = (((aw + ae) + an) + as) + ch2;
              PBMG_NUM_ASSERT(diag > 0.0,
                              "sor_sweep: non-positive stencil diagonal");
              mid[j] = keep * mid[j] +
                       omega *
                           (h2 * rhs[j] + an * up[j] + as * down[j] +
                            aw * mid[j - 1] + ae * mid[j + 1]) /
                           diag;
            }
          }
        });
  }
}

namespace {

/// Fused Poisson red-black sweep over K iterates; per-k update order is
/// the solo sor_sweep(Grid2D&, ...) loop verbatim.
void sor_sweep_poisson_multi(std::span<Grid2D* const> xs,
                             std::span<const Grid2D* const> bs, double omega,
                             rt::Scheduler& sched) {
  const int n = xs[0]->n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double quarter_omega = 0.25 * omega;
  const double keep = 1.0 - omega;
  for (int parity = 0; parity <= 1; ++parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            const int j0 = 1 + ((i + 1 + parity) & 1);
            for (std::size_t k = 0; k < xs.size(); ++k) {
              const double* up = xs[k]->row(i - 1);
              double* mid = xs[k]->row(i);
              const double* down = xs[k]->row(i + 1);
              const double* rhs = bs[k]->row(i);
              for (int j = j0; j < n - 1; j += 2) {
                mid[j] = keep * mid[j] +
                         quarter_omega * (h2 * rhs[j] + up[j] + down[j] +
                                          mid[j - 1] + mid[j + 1]);
              }
            }
          }
        });
  }
}

/// Fused 9-point four-colour sweep over K iterates; coefficient rows are
/// resolved once per grid row and reused across the K inner updates.
void sor_sweep_nine_multi(const grid::StencilOp& op,
                          std::span<Grid2D* const> xs,
                          std::span<const Grid2D* const> bs, double omega,
                          rt::Scheduler& sched) {
  const int n = op.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  for (int color = 0; color < 4; ++color) {
    const int pi = color >> 1;
    const int pj = color & 1;
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, pi, pj](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            if ((i & 1) != pi) continue;
            const grid::NinePointRows rows(op, i);
            const int j0 = 1 + ((1 + pj) & 1);
            for (std::size_t k = 0; k < xs.size(); ++k) {
              const double* up = xs[k]->row(i - 1);
              double* mid = xs[k]->row(i);
              const double* down = xs[k]->row(i + 1);
              const double* rhs = bs[k]->row(i);
              for (int j = j0; j < n - 1; j += 2) {
                const double diag = rows.center[j] + ch2;
                PBMG_NUM_ASSERT(diag > 0.0,
                                "sor_sweep: non-positive stencil diagonal");
                const double nb = rows.neighbour_sum(up, mid, down, j);
                mid[j] = keep * mid[j] + omega * (h2 * rhs[j] + nb) / diag;
              }
            }
          }
        });
  }
}

/// Fused 5-point red-black sweep over K iterates.
void sor_sweep_5pt_multi(const grid::StencilOp& op,
                         std::span<Grid2D* const> xs,
                         std::span<const Grid2D* const> bs, double omega,
                         rt::Scheduler& sched) {
  const int n = op.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  for (int parity = 0; parity <= 1; ++parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            const double* axr = ax.row(i);
            const double* ay_up = ay.row(i - 1);
            const double* ay_dn = ay.row(i);
            const int j0 = 1 + ((i + 1 + parity) & 1);
            for (std::size_t k = 0; k < xs.size(); ++k) {
              const double* up = xs[k]->row(i - 1);
              double* mid = xs[k]->row(i);
              const double* down = xs[k]->row(i + 1);
              const double* rhs = bs[k]->row(i);
              for (int j = j0; j < n - 1; j += 2) {
                const double aw = axr[j - 1];
                const double ae = axr[j];
                const double an = ay_up[j];
                const double as = ay_dn[j];
                const double diag = (((aw + ae) + an) + as) + ch2;
                PBMG_NUM_ASSERT(diag > 0.0,
                                "sor_sweep: non-positive stencil diagonal");
                mid[j] = keep * mid[j] +
                         omega *
                             (h2 * rhs[j] + an * up[j] + as * down[j] +
                              aw * mid[j - 1] + ae * mid[j + 1]) /
                             diag;
              }
            }
          }
        });
  }
}

}  // namespace

void sor_sweep_multi(const grid::StencilOp& op, std::span<Grid2D* const> xs,
                     std::span<const Grid2D* const> bs, double omega,
                     rt::Scheduler& sched,
                     const grid::KernelPolicy& kernels) {
  PBMG_CHECK(xs.size() == bs.size(), "sor_sweep_multi: span size mismatch");
  if (xs.empty()) return;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k] != nullptr && bs[k] != nullptr,
               "sor_sweep_multi: null grid slot");
    PBMG_CHECK(xs[k]->n() == op.n() && bs[k]->n() == op.n(),
               "sor_sweep_multi: operator/grid size mismatch");
  }
  if (xs.size() == 1) {
    // Batch-of-one takes the solo code path, not merely an equivalent one.
    sor_sweep(op, *xs[0], *bs[0], omega, sched, kernels);
    return;
  }
  if (op.is_poisson()) {
    sor_sweep_poisson_multi(xs, bs, omega, sched);
    return;
  }
  PBMG_CHECK(is_valid_grid_size(op.n()),
             "sor_sweep_multi: grid size must be 2^k+1");
  if (kernels.layout == grid::StencilLayout::kPacked) {
    grid::packed_sor_sweep_multi(op, xs, bs, omega, sched,
                                 kernels.simd_width);
    return;
  }
  if (op.is_nine_point()) {
    sor_sweep_nine_multi(op, xs, bs, omega, sched);
    return;
  }
  sor_sweep_5pt_multi(op, xs, bs, omega, sched);
}

void jacobi_sweep(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                  double omega, Grid2D& scratch, rt::Scheduler& sched,
                  const grid::KernelPolicy& kernels) {
  if (op.is_poisson()) {
    jacobi_sweep(x, b, omega, scratch, sched);
    return;
  }
  PBMG_CHECK(is_valid_grid_size(x.n()),
             "jacobi_sweep: grid size must be 2^k+1");
  PBMG_CHECK(x.n() == b.n() && x.n() == scratch.n(),
             "jacobi_sweep: grid size mismatch");
  PBMG_CHECK(op.n() == x.n(), "jacobi_sweep: operator/grid size mismatch");
  if (kernels.layout == grid::StencilLayout::kPacked) {
    grid::packed_jacobi_sweep(op, x, b, omega, scratch, sched,
                              kernels.simd_width);
    return;
  }
  if (op.is_nine_point()) {
    jacobi_sweep_nine(op, x, b, omega, scratch, sched);
    return;
  }
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* up = x.row(i - 1);
          const double* mid = x.row(i);
          const double* down = x.row(i + 1);
          const double* rhs = b.row(i);
          const double* axr = ax.row(i);
          const double* ay_up = ay.row(i - 1);
          const double* ay_dn = ay.row(i);
          double* out = scratch.row(i);
          for (int j = 1; j < n - 1; ++j) {
            const double aw = axr[j - 1];
            const double ae = axr[j];
            const double an = ay_up[j];
            const double as = ay_dn[j];
            const double diag = (((aw + ae) + an) + as) + ch2;
            PBMG_NUM_ASSERT(diag > 0.0,
                            "jacobi_sweep: non-positive stencil diagonal");
            out[j] = keep * mid[j] +
                     omega *
                         (h2 * rhs[j] + an * up[j] + as * down[j] +
                          aw * mid[j - 1] + ae * mid[j + 1]) /
                         diag;
          }
        }
      });
  scratch.copy_boundary_from(x);
  x.swap(scratch);
}

}  // namespace pbmg::solvers
