#include "solvers/line_relax.h"

#include "grid/level.h"
#include "grid/packed_kernels.h"

namespace pbmg::solvers {

void thomas_solve(const double* sub, const double* diag, const double* sup,
                  double* rhs, double* work, int m) {
  PBMG_CHECK(m >= 1, "thomas_solve: need at least one unknown");
  PBMG_NUM_ASSERT(diag[0] != 0.0, "thomas_solve: zero pivot");
  double inv = 1.0 / diag[0];
  work[0] = sup[0] * inv;  // read even at m = 1: callers size bands to m
  rhs[0] = rhs[0] * inv;
  for (int k = 1; k < m; ++k) {
    const double pivot = diag[k] - sub[k] * work[k - 1];
    PBMG_NUM_ASSERT(pivot != 0.0, "thomas_solve: zero pivot");
    inv = 1.0 / pivot;
    work[k] = sup[k] * inv;
    rhs[k] = (rhs[k] - sub[k] * rhs[k - 1]) * inv;
  }
  for (int k = m - 2; k >= 0; --k) {
    rhs[k] -= work[k] * rhs[k + 1];
  }
}

namespace {

/// Forward elimination + back substitution with the bands produced on the
/// fly (no materialized sub/diag/sup arrays).  `cp` and `dp` are the
/// line's private Thomas workspaces (length n); the solved interior is
/// written back through `put`.  Band callbacks are indexed by the 1-based
/// interior position k in [1, n−2]:
///   sub(k)  coefficient of u[k−1]   (ignored at k = 1 — folded into rhs
///           by the caller, which adds the Dirichlet term there)
///   diag(k) the full row diagonal
///   sup(k)  coefficient of u[k+1]   (ignored at k = n−2, same folding)
template <typename Sub, typename Diag, typename Sup, typename Rhs,
          typename Put>
inline void solve_interior_line(int n, double* cp, double* dp, Sub sub,
                                Diag diag, Sup sup, Rhs rhs, Put put) {
  const double d1 = diag(1);
  PBMG_NUM_ASSERT(d1 > 0.0, "line_relax: non-positive diagonal");
  double inv = 1.0 / d1;
  cp[1] = sup(1) * inv;
  dp[1] = rhs(1) * inv;
  for (int k = 2; k <= n - 2; ++k) {
    const double s = sub(k);
    const double pivot = diag(k) - s * cp[k - 1];
    PBMG_NUM_ASSERT(pivot > 0.0, "line_relax: non-positive pivot");
    inv = 1.0 / pivot;
    cp[k] = sup(k) * inv;
    dp[k] = (rhs(k) - s * dp[k - 1]) * inv;
  }
  put(n - 2, dp[n - 2]);
  for (int k = n - 3; k >= 1; --k) {
    dp[k] -= cp[k] * dp[k + 1];
    put(k, dp[k]);
  }
}

/// Shared constant-coefficient elimination for the Poisson fast path: the
/// tridiagonal (−1, 4, −1) is the same for every line, so the c′ factors
/// are computed once and read by all lines of both parities.
void poisson_cprime(double* cp, int n) {
  cp[1] = -0.25;
  for (int k = 2; k <= n - 2; ++k) {
    cp[k] = -1.0 / (4.0 + cp[k - 1]);
  }
}

/// x-line zebra sweep, Poisson.  Lines are interior rows; odd rows first
/// (they read only the frozen even rows), then even rows.
void line_x_poisson(Grid2D& x, const Grid2D& b, rt::Scheduler& sched,
                    grid::ScratchPool& pool) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  double* cp = cpg.row(0);
  poisson_cprime(cp, n);
  for (int parity = 1; parity >= 0; --parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            if ((i & 1) != parity) continue;
            const double* up = x.row(i - 1);
            double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = b.row(i);
            double* dp = dpg.row(i);
            // Forward substitution against the shared c′ factors; the
            // Dirichlet columns fold into the first/last interior rhs
            // (at n = 3 the single unknown is both).
            double r1 = h2 * rhs[1] + up[1] + down[1] + mid[0];
            if (n == 3) r1 += mid[2];
            dp[1] = r1 * 0.25;
            for (int j = 2; j <= n - 2; ++j) {
              double r = h2 * rhs[j] + up[j] + down[j];
              if (j == n - 2) r += mid[n - 1];
              // −cp[j] is exactly the reciprocal pivot 1/(4 + cp[j−1])
              // (IEEE negation is exact), so this matches the variable-
              // coefficient elimination bit for bit without re-dividing.
              dp[j] = (r + dp[j - 1]) * -cp[j];
            }
            mid[n - 2] = dp[n - 2];
            for (int j = n - 3; j >= 1; --j) {
              dp[j] -= cp[j] * dp[j + 1];
              mid[j] = dp[j];
            }
          }
        });
  }
}

/// y-line zebra sweep, Poisson: same system per column (the Poisson
/// stencil is symmetric in x/y), strided accesses down the column.
void line_y_poisson(Grid2D& x, const Grid2D& b, rt::Scheduler& sched,
                    grid::ScratchPool& pool) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  double* cp = cpg.row(0);
  poisson_cprime(cp, n);
  for (int parity = 1; parity >= 0; --parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t jb, std::int64_t je) {
          for (int j = static_cast<int>(jb); j < static_cast<int>(je); ++j) {
            if ((j & 1) != parity) continue;
            double* dp = dpg.row(j);
            double r1 = h2 * b(1, j) + x(1, j - 1) + x(1, j + 1) + x(0, j);
            if (n == 3) r1 += x(2, j);
            dp[1] = r1 * 0.25;
            for (int i = 2; i <= n - 2; ++i) {
              double r = h2 * b(i, j) + x(i, j - 1) + x(i, j + 1);
              if (i == n - 2) r += x(n - 1, j);
              dp[i] = (r + dp[i - 1]) * -cp[i];
            }
            x(n - 2, j) = dp[n - 2];
            for (int i = n - 3; i >= 1; --i) {
              dp[i] -= cp[i] * dp[i + 1];
              x(i, j) = dp[i];
            }
          }
        });
  }
}

/// x-line zebra sweep with true per-edge coefficients: row i's system is
///   −aW·u[j−1] + (aW+aE+aN+aS+c·h²)·u[j] − aE·u[j+1]
///     = h²·b[j] + aN·up[j] + aS·down[j]  (+ Dirichlet folds at the ends).
void line_x_op(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
               rt::Scheduler& sched, grid::ScratchPool& pool) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            if ((i & 1) != parity) continue;
            const double* up = x.row(i - 1);
            double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = b.row(i);
            const double* axr = ax.row(i);
            const double* ay_up = ay.row(i - 1);
            const double* ay_dn = ay.row(i);
            solve_interior_line(
                n, cpg.row(i), dpg.row(i),
                [&](int j) { return -axr[j - 1]; },
                [&](int j) {
                  return axr[j - 1] + axr[j] + ay_up[j] + ay_dn[j] + ch2;
                },
                [&](int j) { return -axr[j]; },
                [&](int j) {
                  double r = h2 * rhs[j] + ay_up[j] * up[j] +
                             ay_dn[j] * down[j];
                  if (j == 1) r += axr[0] * mid[0];
                  if (j == n - 2) r += axr[n - 2] * mid[n - 1];
                  return r;
                },
                [&](int j, double value) { mid[j] = value; });
          }
        });
  }
}

/// y-line zebra sweep with true per-edge coefficients (column systems in
/// the ay bands).
void line_y_op(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
               rt::Scheduler& sched, grid::ScratchPool& pool) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t jb, std::int64_t je) {
          for (int j = static_cast<int>(jb); j < static_cast<int>(je); ++j) {
            if ((j & 1) != parity) continue;
            solve_interior_line(
                n, cpg.row(j), dpg.row(j),
                [&](int i) { return -ay(i - 1, j); },
                [&](int i) {
                  return ax(i, j - 1) + ax(i, j) + ay(i - 1, j) + ay(i, j) +
                         ch2;
                },
                [&](int i) { return -ay(i, j); },
                [&](int i) {
                  double r = h2 * b(i, j) + ax(i, j - 1) * x(i, j - 1) +
                             ax(i, j) * x(i, j + 1);
                  if (i == 1) r += ay(0, j) * x(0, j);
                  if (i == n - 2) r += ay(n - 2, j) * x(n - 1, j);
                  return r;
                },
                [&](int i, double value) { x(i, j) = value; });
          }
        });
  }
}

/// x-line zebra sweep for a 9-point operator: the in-row bands are the
/// same −aW / diag / −aE as the 5-point case (corner couplings reach only
/// the rows above and below, so zebra parity still freezes every read),
/// while the corner terms fold into the right-hand side alongside aN/aS.
/// The diagonal comes from the operator's explicit centre coefficient.
void line_x_nine(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                 rt::Scheduler& sched, grid::ScratchPool& pool) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            if ((i & 1) != parity) continue;
            const double* up = x.row(i - 1);
            double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = b.row(i);
            const grid::NinePointRows rows(op, i);
            solve_interior_line(
                n, cpg.row(i), dpg.row(i),
                [&](int j) { return -rows.ax[j - 1]; },
                [&](int j) { return rows.center[j] + ch2; },
                [&](int j) { return -rows.ax[j]; },
                [&](int j) {
                  double r = h2 * rhs[j] + rows.cross_row_sum(up, down, j);
                  if (j == 1) r += rows.ax[0] * mid[0];
                  if (j == n - 2) r += rows.ax[n - 2] * mid[n - 1];
                  return r;
                },
                [&](int j, double value) { mid[j] = value; });
          }
        });
  }
}

/// y-line zebra sweep for a 9-point operator (column systems in the ay
/// bands; corner terms read the frozen left/right columns).
void line_y_nine(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                 rt::Scheduler& sched, grid::ScratchPool& pool) {
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  const Grid2D& ase = op.ase_grid();
  const Grid2D& asw = op.asw_grid();
  const Grid2D& ctr = op.center_grid();
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t jb, std::int64_t je) {
          for (int j = static_cast<int>(jb); j < static_cast<int>(je); ++j) {
            if ((j & 1) != parity) continue;
            solve_interior_line(
                n, cpg.row(j), dpg.row(j),
                [&](int i) { return -ay(i - 1, j); },
                [&](int i) { return ctr(i, j) + ch2; },
                [&](int i) { return -ay(i, j); },
                [&](int i) {
                  double r = h2 * b(i, j) + ax(i, j - 1) * x(i, j - 1) +
                             ax(i, j) * x(i, j + 1) +
                             ase(i - 1, j - 1) * x(i - 1, j - 1) +
                             asw(i - 1, j + 1) * x(i - 1, j + 1) +
                             asw(i, j) * x(i + 1, j - 1) +
                             ase(i, j) * x(i + 1, j + 1);
                  if (i == 1) r += ay(0, j) * x(0, j);
                  if (i == n - 2) r += ay(n - 2, j) * x(n - 1, j);
                  return r;
                },
                [&](int i, double value) { x(i, j) = value; });
          }
        });
  }
}

void check_line_operands(const Grid2D& x, const Grid2D& b, RelaxKind kind) {
  PBMG_CHECK(is_line_relax(kind),
             "line_relax_sweep: kind must be a line variant");
  PBMG_CHECK(is_valid_grid_size(x.n()),
             "line_relax_sweep: grid size must be 2^k+1");
  PBMG_CHECK(x.n() == b.n(), "line_relax_sweep: grid size mismatch");
}

}  // namespace

void line_relax_sweep(Grid2D& x, const Grid2D& b, RelaxKind kind,
                      rt::Scheduler& sched, grid::ScratchPool& pool) {
  check_line_operands(x, b, kind);
  if (kind == RelaxKind::kLineX || kind == RelaxKind::kLineZebraAlt) {
    line_x_poisson(x, b, sched, pool);
  }
  if (kind == RelaxKind::kLineY || kind == RelaxKind::kLineZebraAlt) {
    line_y_poisson(x, b, sched, pool);
  }
}

void line_relax_sweep(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                      RelaxKind kind, rt::Scheduler& sched,
                      grid::ScratchPool& pool,
                      const grid::KernelPolicy& kernels) {
  if (op.is_poisson()) {
    line_relax_sweep(x, b, kind, sched, pool);
    return;
  }
  check_line_operands(x, b, kind);
  PBMG_CHECK(op.n() == x.n(), "line_relax_sweep: operator/grid size mismatch");
  if (kernels.layout == grid::StencilLayout::kPacked) {
    if (kind == RelaxKind::kLineX || kind == RelaxKind::kLineZebraAlt) {
      grid::packed_line_x(op, x, b, sched, pool, kernels.simd_width);
    }
    if (kind == RelaxKind::kLineY || kind == RelaxKind::kLineZebraAlt) {
      grid::packed_line_y(op, x, b, sched, pool, kernels.simd_width);
    }
    return;
  }
  const bool nine = op.is_nine_point();
  if (kind == RelaxKind::kLineX || kind == RelaxKind::kLineZebraAlt) {
    if (nine) line_x_nine(op, x, b, sched, pool);
    else line_x_op(op, x, b, sched, pool);
  }
  if (kind == RelaxKind::kLineY || kind == RelaxKind::kLineZebraAlt) {
    if (nine) line_y_nine(op, x, b, sched, pool);
    else line_y_op(op, x, b, sched, pool);
  }
}

void line_relax_sweep_multi(const grid::StencilOp& op,
                            std::span<Grid2D* const> xs,
                            std::span<const Grid2D* const> bs, RelaxKind kind,
                            rt::Scheduler& sched, grid::ScratchPool& pool,
                            const grid::KernelPolicy& kernels) {
  PBMG_CHECK(xs.size() == bs.size(),
             "line_relax_sweep_multi: span size mismatch");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k] != nullptr && bs[k] != nullptr,
               "line_relax_sweep_multi: null grid slot");
  }
  if (xs.size() == 1) {
    // Batch-of-one takes the solo code path, not merely an equivalent one.
    line_relax_sweep(op, *xs[0], *bs[0], kind, sched, pool, kernels);
    return;
  }
  if (!op.is_poisson() &&
      kernels.layout == grid::StencilLayout::kPacked) {
    // The Thomas pivots depend only on the operator: factor each line
    // group once and replay the rhs recurrence per iterate
    // (grid/packed_kernels.h), instead of re-dividing K times.  The
    // zebra order per iterate (x pass then y pass, odd lines then even)
    // is preserved inside each fused pass, so every slot stays bitwise
    // identical to its solo sweep.
    for (std::size_t k = 0; k < xs.size(); ++k) {
      check_line_operands(*xs[k], *bs[k], kind);
      PBMG_CHECK(op.n() == xs[k]->n(),
                 "line_relax_sweep_multi: operator/grid size mismatch");
    }
    if (kind == RelaxKind::kLineX || kind == RelaxKind::kLineZebraAlt) {
      grid::packed_line_x_multi(op, xs, bs, sched, pool, kernels.simd_width);
    }
    if (kind == RelaxKind::kLineY || kind == RelaxKind::kLineZebraAlt) {
      grid::packed_line_y_multi(op, xs, bs, sched, pool, kernels.simd_width);
    }
    return;
  }
  for (std::size_t k = 0; k < xs.size(); ++k) {
    line_relax_sweep(op, *xs[k], *bs[k], kind, sched, pool, kernels);
  }
}

}  // namespace pbmg::solvers
