#include "solvers/direct.h"

// The deprecated shared_direct_solver shim is defined below; silence the
// self-referential deprecation warning.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include "grid/level.h"
#include "linalg/poisson_assembly.h"

namespace pbmg::solvers {

DirectSolver::DirectSolver(int max_cached_n) : max_cached_n_(max_cached_n) {}

std::shared_ptr<const linalg::BandMatrix> DirectSolver::factor_for(int n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(n);
    if (it != cache_.end()) return it->second;
  }
  // Factor outside the lock: factorization of large sizes takes seconds and
  // other sizes should not be blocked.  A duplicate race costs one wasted
  // factorization, never incorrectness.
  auto matrix = std::make_shared<linalg::BandMatrix>(
      linalg::assemble_poisson_band(n));
  linalg::band_cholesky_factor(*matrix);
  std::shared_ptr<const linalg::BandMatrix> factor = std::move(matrix);
  if (n <= max_cached_n_) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cache_.emplace(n, factor);
    if (!inserted) return it->second;  // lost the race: reuse the winner
  }
  return factor;
}

void DirectSolver::solve(const Grid2D& b, Grid2D& x) {
  const int n = b.n();
  PBMG_CHECK(is_valid_grid_size(n), "DirectSolver::solve: n must be 2^k+1");
  PBMG_CHECK(x.n() == n, "DirectSolver::solve: grid size mismatch");
  const auto factor = factor_for(n);
  std::vector<double> rhs = linalg::gather_poisson_rhs(b, x);
  linalg::band_cholesky_solve(*factor, rhs);
  linalg::scatter_interior(rhs, x);
}

void DirectSolver::solve(const grid::StencilOp& op, const Grid2D& b,
                         Grid2D& x) {
  if (op.is_poisson()) {
    solve(b, x);
    return;
  }
  const int n = b.n();
  PBMG_CHECK(is_valid_grid_size(n), "DirectSolver::solve: n must be 2^k+1");
  PBMG_CHECK(x.n() == n && op.n() == n,
             "DirectSolver::solve: grid/operator size mismatch");
  linalg::BandMatrix a = linalg::assemble_stencil_band(op);
  std::vector<double> rhs = linalg::gather_stencil_rhs(op, b, x);
  linalg::band_spd_solve(a, rhs);
  linalg::scatter_interior(rhs, x);
}

void DirectSolver::clear_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

std::size_t DirectSolver::cached_sizes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

DirectSolver& shared_direct_solver() {
  static DirectSolver instance;
  return instance;
}

}  // namespace pbmg::solvers
