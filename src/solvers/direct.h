#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "grid/grid2d.h"
#include "grid/stencil_op.h"
#include "linalg/band_matrix.h"

/// \file direct.h
/// The paper's Direct method: banded Cholesky factor + triangular solves
/// (LAPACK DPBSV equivalent), with a per-size factor cache.
///
/// DPBSV factors on every call, and the paper's complexity table (Direct =
/// n² = N⁴) counts that factorization, so the paper-faithful configuration
/// is cache-free: `shared_direct_solver()` refactors on every solve.  The
/// optional factor cache (the Poisson band matrix depends only on n) is an
/// extension for API users who solve many systems of one size; tests use it
/// to validate both paths.

namespace pbmg::solvers {

/// Direct Poisson solver with a thread-safe factor cache.
class DirectSolver {
 public:
  /// \param max_cached_n  largest grid side whose factor is kept resident
  ///        (a factor for side n costs ≈ (n−2)²·(n−1)·8 bytes; 257 caps an
  ///        entry at ~130 MB).  0 — the default — disables caching, giving
  ///        LAPACK DPBSV semantics: factor + solve on every call.
  explicit DirectSolver(int max_cached_n = 0);

  /// Solves A·x = b for the interior of `x`.  On entry `x` carries the
  /// Dirichlet values on its ring (interior is ignored); on return the
  /// interior holds the exact solution.  Requires b.n() == x.n() = 2^k+1.
  void solve(const Grid2D& b, Grid2D& x);

  /// Same contract for a variable-coefficient operator (stencil_op.h).
  /// The Poisson fast path dispatches to solve(b, x) above — including its
  /// factor cache.  Variable-coefficient systems assemble and factor on
  /// every call (DPBSV semantics; the factor cache is keyed by size only,
  /// which is sound solely for the size-determined Poisson matrix).
  void solve(const grid::StencilOp& op, const Grid2D& b, Grid2D& x);

  /// Drops all cached factors.
  void clear_cache();

  /// Number of sizes currently cached (observability for tests).
  std::size_t cached_sizes() const;

 private:
  std::shared_ptr<const linalg::BandMatrix> factor_for(int n);

  int max_cached_n_;
  mutable std::mutex mutex_;
  std::map<int, std::shared_ptr<const linalg::BandMatrix>> cache_;
};

/// \deprecated Process-wide shared direct solver — the last of the
/// retired singletons, kept one release for out-of-tree callers.  Every
/// pbmg::Engine owns its own DirectSolver (engine.direct()); nothing
/// in-tree may call this (enforced by the no_singleton_calls test).
[[deprecated("use pbmg::Engine::direct() instead")]]
DirectSolver& shared_direct_solver();

}  // namespace pbmg::solvers
