#pragma once

#include <functional>

#include "grid/grid2d.h"
#include "grid/scratch.h"
#include "grid/stencil_op.h"
#include "obs/phase_profile.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "solvers/relax.h"

/// \file multigrid.h
/// Classical multigrid building blocks and the paper's reference
/// algorithms (§2.1 MULTIGRID-V-SIMPLE, §4.2.2 reference iterated-V and
/// reference full-multigrid).
///
/// All routines solve A·x = b in place: `x` enters holding the Dirichlet
/// ring plus the current interior guess and leaves holding the improved
/// solution.  Level temporaries are leased from the caller-supplied
/// grid::ScratchPool (normally the owning pbmg::Engine's pool), so
/// concurrent solves on different engines never share allocator state.

namespace pbmg::solvers {

/// Parameters of a classical V-cycle.  The smoother (RelaxKind, now in
/// relax.h) may be any of the point or line variants; line relaxation
/// leases its Thomas workspaces from the cycle's ScratchPool.
struct VCycleOptions {
  int pre_relax = 1;             ///< smoothing sweeps before coarsening
  int post_relax = 1;            ///< smoothing sweeps after the correction
  double omega = kRecurseOmega;  ///< relaxation weight (paper: 1.15)
  int direct_level = 1;          ///< recursion level solved directly (1 ⇒ N=3)
  RelaxKind relaxation = RelaxKind::kSor;  ///< smoother (paper: SOR)
  /// Kernel implementation policy for the smoothing and residual sweeps
  /// (grid/stencil_op.h): legacy streaming vs the packed SoA layout plus
  /// SIMD width.  Bitwise result-invariant; affects Poisson cycles not at
  /// all (the fast path keeps its dedicated kernels).
  grid::KernelPolicy kernels;
  /// Optional per-(level, phase) wall-time sink (obs/phase_profile.h);
  /// null — the default — keeps the cycle free of clock reads.
  obs::PhaseProfile* profile = nullptr;
};

/// One V-cycle on A·x = b (recursion down to options.direct_level).
/// This is the body of the paper's MULTIGRID-V-SIMPLE when options are the
/// defaults.
void vcycle(Grid2D& x, const Grid2D& b, const VCycleOptions& options,
            rt::Scheduler& sched, DirectSolver& direct,
            grid::ScratchPool& pool);

/// One full-multigrid pass: recursively solves the restricted *problem*
/// to seed the fine-grid initial guess, then runs one V-cycle per level on
/// the way up (the classical FMG ramp of the paper's Figure 3).
void full_multigrid(Grid2D& x, const Grid2D& b, const VCycleOptions& options,
                    rt::Scheduler& sched, DirectSolver& direct,
                    grid::ScratchPool& pool);

/// Stop predicate for the iterate-until-converged reference drivers; called
/// after each iteration with the current iterate and 1-based iteration
/// index.  Return true to stop.
using StopFn = std::function<bool(const Grid2D& x, int iteration)>;

/// Result of an iterate-until-converged run.
struct IterationOutcome {
  int iterations = 0;     ///< iterations actually executed
  bool converged = false; ///< true when the stop predicate fired
};

/// Iterated Red-Black SOR: sweeps with the given ω until stop() or
/// max_iterations.  The paper's "SOR" baseline (Fig. 6) uses ω_opt(n).
IterationOutcome solve_iterated_sor(Grid2D& x, const Grid2D& b, double omega,
                                    int max_iterations, const StopFn& stop,
                                    rt::Scheduler& sched);

/// The paper's "Multigrid" baseline: MULTIGRID-V-SIMPLE iterated until
/// stop() or max_iterations (reference V-cycle algorithm of §4.2.2).
IterationOutcome solve_reference_v(Grid2D& x, const Grid2D& b,
                                   const VCycleOptions& options,
                                   int max_iterations, const StopFn& stop,
                                   rt::Scheduler& sched, DirectSolver& direct,
                                   grid::ScratchPool& pool);

/// The paper's reference full-multigrid algorithm (§4.2.2): one standard
/// full-multigrid ramp, then standard V-cycles until stop().
IterationOutcome solve_reference_fmg(Grid2D& x, const Grid2D& b,
                                     const VCycleOptions& options,
                                     int max_iterations, const StopFn& stop,
                                     rt::Scheduler& sched,
                                     DirectSolver& direct,
                                     grid::ScratchPool& pool);

// ---------------------------------------------------------------------
// Variable-coefficient overloads.  Each cycle runs against a
// grid::StencilHierarchy: level k smooths, forms residuals and solves
// directly with ops.at(k), so the coarse-grid correction uses the
// restricted coefficients rather than rediscretised Poisson.  A hierarchy
// whose fine operator is the Poisson fast path executes bit-for-bit the
// same arithmetic as the Poisson entry points above.  All overloads
// require ops.top_level() >= level_of_size(x.n()) and
// ops.at(level).n() == x.n().
// ---------------------------------------------------------------------

/// One V-cycle on the hierarchy's operator.
void vcycle(const grid::StencilHierarchy& ops, Grid2D& x, const Grid2D& b,
            const VCycleOptions& options, rt::Scheduler& sched,
            DirectSolver& direct, grid::ScratchPool& pool);

/// One full-multigrid pass on the hierarchy's operator.
void full_multigrid(const grid::StencilHierarchy& ops, Grid2D& x,
                    const Grid2D& b, const VCycleOptions& options,
                    rt::Scheduler& sched, DirectSolver& direct,
                    grid::ScratchPool& pool);

/// Iterated V-cycles on the hierarchy's operator until stop().
IterationOutcome solve_reference_v(const grid::StencilHierarchy& ops,
                                   Grid2D& x, const Grid2D& b,
                                   const VCycleOptions& options,
                                   int max_iterations, const StopFn& stop,
                                   rt::Scheduler& sched, DirectSolver& direct,
                                   grid::ScratchPool& pool);

/// Iterated red-black SOR on a variable-coefficient operator until
/// stop(); the Poisson fast path matches the plain overload bit for bit.
IterationOutcome solve_iterated_sor(const grid::StencilOp& op, Grid2D& x,
                                    const Grid2D& b, double omega,
                                    int max_iterations, const StopFn& stop,
                                    rt::Scheduler& sched);

/// FMG ramp then V-cycles on the hierarchy's operator until stop().
IterationOutcome solve_reference_fmg(const grid::StencilHierarchy& ops,
                                     Grid2D& x, const Grid2D& b,
                                     const VCycleOptions& options,
                                     int max_iterations, const StopFn& stop,
                                     rt::Scheduler& sched,
                                     DirectSolver& direct,
                                     grid::ScratchPool& pool);

}  // namespace pbmg::solvers
