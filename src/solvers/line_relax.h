#pragma once

#include "grid/grid2d.h"
#include "grid/scratch.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"
#include "solvers/relax.h"

/// \file line_relax.h
/// Line relaxation: batched Thomas tridiagonal solves over grid rows or
/// columns in zebra (odd/even line red-black) ordering.
///
/// Point relaxation smooths only the strongly coupled direction of an
/// anisotropic operator: for −(a_x u_xx + a_y u_yy) with a_y ≪ a_x the
/// error stays rough along y and the V-cycle contraction degrades from
/// ~0.1 to ~0.8 per cycle at 32:1 and stalls entirely at 1000:1.  Line
/// relaxation solves each row (or column) *exactly* — a tridiagonal
/// system per line, O(n) by the Thomas algorithm — which smooths all
/// modes that are strongly coupled within the line, restoring textbook
/// multigrid rates for arbitrary axis anisotropy (x-lines for strong
/// x-coupling, y-lines for strong y-coupling, alternating when the
/// strong direction varies across the domain, e.g. the `aniso-rot`
/// operator family).
///
/// Ordering is zebra: all odd lines are solved first (in parallel — they
/// only read the frozen even lines), then all even lines.  Lines of one
/// parity touch disjoint memory, so the sweeps are bitwise deterministic
/// under any thread count and scheduling order, like the red-black point
/// sweeps.  No over-relaxation is applied (ω = 1): each line update is
/// the exact block Gauss-Seidel step, which never increases the energy
/// norm of the error on SPD systems (the property suite pins this).
///
/// Workspaces (the per-line forward-elimination coefficients of the
/// Thomas algorithm) are leased from the caller's grid::ScratchPool —
/// line i of a leased n×n grid serves as line i's private scratch, so
/// concurrent lines never share state and concurrent engines never share
/// allocators.  SolveSession prewarms these leases next to the cycle
/// temporaries.

namespace pbmg::solvers {

/// Solves one tridiagonal system in place by the Thomas algorithm:
///   sub[k]·u[k−1] + diag[k]·u[k] + sup[k]·u[k+1] = rhs[k],  k in [0, m)
/// with sub[0] and sup[m−1] ignored.  On return rhs holds the solution.
/// `work` is caller scratch of length >= m.  Requires m >= 1 and a
/// positive-definite (or at least factorizable) system; the elimination
/// asserts non-vanishing pivots under PBMG_ASSERTIONS.
void thomas_solve(const double* sub, const double* diag, const double* sup,
                  double* rhs, double* work, int m);

/// One zebra line-relaxation sweep of `kind` on the Poisson operator
/// A·x = b (kLineX: rows, kLineY: columns, kLineZebraAlt: one x pass
/// then one y pass).  The boundary ring of x is read, not written.
/// Requires is_line_relax(kind) and x.n() == b.n() = 2^k+1.
void line_relax_sweep(Grid2D& x, const Grid2D& b, RelaxKind kind,
                      rt::Scheduler& sched, grid::ScratchPool& pool);

/// Variable-coefficient overload: the tridiagonal bands carry the true
/// per-edge coefficients (sub = −aW, sup = −aE for rows; −aN/−aS for
/// columns) and the full diagonal (aW+aE+aN+aS)/h² + c.  The Poisson
/// fast path dispatches to the overload above, bit-for-bit.  A
/// KernelPolicy selecting the packed layout runs the batched-Thomas SIMD
/// line solves (grid/packed_kernels.h), vectorized across independent
/// same-parity lines and bitwise identical to legacy.  Requires
/// op.n() == x.n().
void line_relax_sweep(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                      RelaxKind kind, rt::Scheduler& sched,
                      grid::ScratchPool& pool,
                      const grid::KernelPolicy& kernels = {});

/// Batched zebra line relaxation: one sweep of each xs[k] against bs[k].
/// A line sweep already amortizes coefficient traffic across the
/// same-parity lines of ONE iterate (the batched-Thomas lanes), so this
/// is a sequential loop over K solo sweeps — trivially bitwise identical
/// per slot — kept as an entry point so the batched executor treats every
/// smoother uniformly and a genuinely fused variant can slot in later.
void line_relax_sweep_multi(const grid::StencilOp& op,
                            std::span<Grid2D* const> xs,
                            std::span<const Grid2D* const> bs, RelaxKind kind,
                            rt::Scheduler& sched, grid::ScratchPool& pool,
                            const grid::KernelPolicy& kernels = {});

}  // namespace pbmg::solvers
