#include "solvers/multigrid.h"

#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/scratch.h"
#include "solvers/line_relax.h"
#include "solvers/relax.h"

namespace pbmg::solvers {

namespace {

/// Operator for `level`: from the hierarchy when one is supplied, else the
/// constant-coefficient Poisson fast path (which every op-aware kernel
/// dispatches to the original specialised kernel, bit-for-bit).
grid::StencilOp op_at(const grid::StencilHierarchy* ops, int level, int n) {
  return ops != nullptr ? ops->at(level) : grid::StencilOp::poisson(n);
}

void smooth(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
            const VCycleOptions& options, int sweeps, int level,
            rt::Scheduler& sched, grid::ScratchPool& pool) {
  obs::PhaseProfile* profile = options.profile;
  switch (options.relaxation) {
    case RelaxKind::kSor:
      for (int s = 0; s < sweeps; ++s) {
        obs::ScopedPhaseTimer timer(profile, obs::Phase::kRelax, level);
        sor_sweep(op, x, b, options.omega, sched, options.kernels);
      }
      break;
    case RelaxKind::kJacobi: {
      auto scratch_lease = pool.acquire(x.n());
      for (int s = 0; s < sweeps; ++s) {
        obs::ScopedPhaseTimer timer(profile, obs::Phase::kRelax, level);
        jacobi_sweep(op, x, b, kJacobiOmega, scratch_lease.get(), sched,
                     options.kernels);
      }
      break;
    }
    case RelaxKind::kLineX:
    case RelaxKind::kLineY:
    case RelaxKind::kLineZebraAlt:
      // Line relaxation takes no ω: each line update is the exact block
      // Gauss-Seidel step (see line_relax.h).
      for (int s = 0; s < sweeps; ++s) {
        obs::ScopedPhaseTimer timer(profile, obs::Phase::kLineSolve, level);
        line_relax_sweep(op, x, b, options.relaxation, sched, pool,
                         options.kernels);
      }
      break;
  }
}

void vcycle_impl(const grid::StencilHierarchy* ops, Grid2D& x,
                 const Grid2D& b, int level, const VCycleOptions& options,
                 rt::Scheduler& sched, DirectSolver& direct,
                 grid::ScratchPool& pool) {
  const grid::StencilOp op = op_at(ops, level, x.n());
  obs::PhaseProfile* profile = options.profile;
  if (level <= options.direct_level) {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kDirect, level);
    direct.solve(op, b, x);
    return;
  }
  smooth(op, x, b, options, options.pre_relax, level, sched, pool);
  const int n = x.n();
  auto r_lease = pool.acquire(n);
  Grid2D& r = r_lease.get();  // residual() writes every cell
  const int nc = coarse_size(n);
  auto rc_lease = pool.acquire(nc);
  Grid2D& rc = rc_lease.get();  // restriction writes interior + zeros ring
  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kRestrict, level);
    grid::residual_op(op, x, b, r, sched, options.kernels);
    grid::restrict_full_weighting(r, rc, sched);
  }
  // Error equation on the coarse grid: zero initial guess, zero Dirichlet
  // ring (the error of a Dirichlet problem vanishes on the boundary).
  auto e_lease = pool.acquire(nc);
  Grid2D& e = e_lease.get();
  e.fill(0.0);
  vcycle_impl(ops, e, rc, level - 1, options, sched, direct, pool);
  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kInterpolate, level);
    grid::interpolate_add(e, x, sched);
  }
  smooth(op, x, b, options, options.post_relax, level, sched, pool);
}

void fmg_impl(const grid::StencilHierarchy* ops, Grid2D& x, const Grid2D& b,
              int level, const VCycleOptions& options, rt::Scheduler& sched,
              DirectSolver& direct, grid::ScratchPool& pool) {
  obs::PhaseProfile* profile = options.profile;
  if (level <= options.direct_level) {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kDirect, level);
    direct.solve(op_at(ops, level, x.n()), b, x);
    return;
  }
  // Coarsen the *problem*: boundary ring travels by injection, the RHS by
  // full weighting.  The coarse operator comes from the hierarchy (the
  // coefficients were restricted once, up front).
  const int nc = coarse_size(x.n());
  auto xc_lease = pool.acquire(nc);
  Grid2D& xc = xc_lease.get();  // injection writes every cell
  auto bc_lease = pool.acquire(nc);
  Grid2D& bc = bc_lease.get();
  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kRestrict, level);
    grid::restrict_inject(x, xc, sched);
    grid::restrict_full_weighting(b, bc, sched);
  }
  fmg_impl(ops, xc, bc, level - 1, options, sched, direct, pool);
  // Lift the coarse solution as the fine initial guess, then polish with
  // one V-cycle (classical FMG ramp).
  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kInterpolate, level);
    grid::interpolate_assign(xc, x, sched);
  }
  vcycle_impl(ops, x, b, level, options, sched, direct, pool);
}

void check_hierarchy(const grid::StencilHierarchy& ops, const Grid2D& x,
                     const char* what) {
  const int level = level_of_size(x.n());
  PBMG_CHECK(ops.top_level() >= level,
             std::string(what) + ": hierarchy top level " +
                 std::to_string(ops.top_level()) + " cannot serve level " +
                 std::to_string(level));
  PBMG_CHECK(ops.at(level).n() == x.n(),
             std::string(what) + ": hierarchy/grid size mismatch");
}

}  // namespace

void vcycle(Grid2D& x, const Grid2D& b, const VCycleOptions& options,
            rt::Scheduler& sched, DirectSolver& direct,
            grid::ScratchPool& pool) {
  PBMG_CHECK(x.n() == b.n(), "vcycle: grid size mismatch");
  const int level = level_of_size(x.n());
  PBMG_CHECK(options.direct_level >= 1,
             "vcycle: direct_level must be >= 1 (N = 3 base case)");
  vcycle_impl(nullptr, x, b, level, options, sched, direct, pool);
}

void full_multigrid(Grid2D& x, const Grid2D& b, const VCycleOptions& options,
                    rt::Scheduler& sched, DirectSolver& direct,
                    grid::ScratchPool& pool) {
  PBMG_CHECK(x.n() == b.n(), "full_multigrid: grid size mismatch");
  const int level = level_of_size(x.n());
  PBMG_CHECK(options.direct_level >= 1,
             "full_multigrid: direct_level must be >= 1");
  fmg_impl(nullptr, x, b, level, options, sched, direct, pool);
}

void vcycle(const grid::StencilHierarchy& ops, Grid2D& x, const Grid2D& b,
            const VCycleOptions& options, rt::Scheduler& sched,
            DirectSolver& direct, grid::ScratchPool& pool) {
  PBMG_CHECK(x.n() == b.n(), "vcycle: grid size mismatch");
  PBMG_CHECK(options.direct_level >= 1,
             "vcycle: direct_level must be >= 1 (N = 3 base case)");
  check_hierarchy(ops, x, "vcycle");
  vcycle_impl(&ops, x, b, level_of_size(x.n()), options, sched, direct, pool);
}

void full_multigrid(const grid::StencilHierarchy& ops, Grid2D& x,
                    const Grid2D& b, const VCycleOptions& options,
                    rt::Scheduler& sched, DirectSolver& direct,
                    grid::ScratchPool& pool) {
  PBMG_CHECK(x.n() == b.n(), "full_multigrid: grid size mismatch");
  PBMG_CHECK(options.direct_level >= 1,
             "full_multigrid: direct_level must be >= 1");
  check_hierarchy(ops, x, "full_multigrid");
  fmg_impl(&ops, x, b, level_of_size(x.n()), options, sched, direct, pool);
}

IterationOutcome solve_reference_v(const grid::StencilHierarchy& ops,
                                   Grid2D& x, const Grid2D& b,
                                   const VCycleOptions& options,
                                   int max_iterations, const StopFn& stop,
                                   rt::Scheduler& sched, DirectSolver& direct,
                                   grid::ScratchPool& pool) {
  IterationOutcome out;
  for (int it = 1; it <= max_iterations; ++it) {
    vcycle(ops, x, b, options, sched, direct, pool);
    out.iterations = it;
    if (stop && stop(x, it)) {
      out.converged = true;
      break;
    }
  }
  return out;
}

IterationOutcome solve_iterated_sor(const grid::StencilOp& op, Grid2D& x,
                                    const Grid2D& b, double omega,
                                    int max_iterations, const StopFn& stop,
                                    rt::Scheduler& sched) {
  IterationOutcome out;
  for (int it = 1; it <= max_iterations; ++it) {
    sor_sweep(op, x, b, omega, sched);
    out.iterations = it;
    if (stop && stop(x, it)) {
      out.converged = true;
      break;
    }
  }
  return out;
}

IterationOutcome solve_reference_fmg(const grid::StencilHierarchy& ops,
                                     Grid2D& x, const Grid2D& b,
                                     const VCycleOptions& options,
                                     int max_iterations, const StopFn& stop,
                                     rt::Scheduler& sched,
                                     DirectSolver& direct,
                                     grid::ScratchPool& pool) {
  IterationOutcome out;
  full_multigrid(ops, x, b, options, sched, direct, pool);
  out.iterations = 1;
  if (stop && stop(x, 1)) {
    out.converged = true;
    return out;
  }
  for (int it = 2; it <= max_iterations; ++it) {
    vcycle(ops, x, b, options, sched, direct, pool);
    out.iterations = it;
    if (stop && stop(x, it)) {
      out.converged = true;
      break;
    }
  }
  return out;
}

IterationOutcome solve_iterated_sor(Grid2D& x, const Grid2D& b, double omega,
                                    int max_iterations, const StopFn& stop,
                                    rt::Scheduler& sched) {
  IterationOutcome out;
  for (int it = 1; it <= max_iterations; ++it) {
    sor_sweep(x, b, omega, sched);
    out.iterations = it;
    if (stop && stop(x, it)) {
      out.converged = true;
      break;
    }
  }
  return out;
}

IterationOutcome solve_reference_v(Grid2D& x, const Grid2D& b,
                                   const VCycleOptions& options,
                                   int max_iterations, const StopFn& stop,
                                   rt::Scheduler& sched, DirectSolver& direct,
                                   grid::ScratchPool& pool) {
  IterationOutcome out;
  for (int it = 1; it <= max_iterations; ++it) {
    vcycle(x, b, options, sched, direct, pool);
    out.iterations = it;
    if (stop && stop(x, it)) {
      out.converged = true;
      break;
    }
  }
  return out;
}

IterationOutcome solve_reference_fmg(Grid2D& x, const Grid2D& b,
                                     const VCycleOptions& options,
                                     int max_iterations, const StopFn& stop,
                                     rt::Scheduler& sched,
                                     DirectSolver& direct,
                                     grid::ScratchPool& pool) {
  IterationOutcome out;
  full_multigrid(x, b, options, sched, direct, pool);
  out.iterations = 1;
  if (stop && stop(x, 1)) {
    out.converged = true;
    return out;
  }
  for (int it = 2; it <= max_iterations; ++it) {
    vcycle(x, b, options, sched, direct, pool);
    out.iterations = it;
    if (stop && stop(x, it)) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace pbmg::solvers
