#pragma once

#include "grid/grid2d.h"
#include "runtime/scheduler.h"

/// \file relax.h
/// Relaxation kernels: Red-Black Successive Over-Relaxation and weighted
/// Jacobi.
///
/// The paper restricts its search space to Red-Black SOR (§2.3): the
/// iterative shortcut uses ω_opt(N) — the optimal SOR weight for the 2-D
/// Poisson problem with Dirichlet boundaries — while the relaxations inside
/// RECURSE use the fixed weight 1.15 chosen by the authors.  Weighted
/// Jacobi is provided as the alternative the paper measured and rejected.

namespace pbmg::solvers {

/// Optimal SOR relaxation parameter for the 2-D discrete Poisson problem
/// with Dirichlet boundaries on an n×n grid:  ω = 2 / (1 + sin(π·h)),
/// h = 1/(n−1)   [Demmel, Applied Numerical Linear Algebra].
double omega_opt(int n);

/// SOR weight used inside RECURSE by the paper (§2.3).
inline constexpr double kRecurseOmega = 1.15;

/// Damping factor commonly used for weighted Jacobi smoothing.
inline constexpr double kJacobiOmega = 2.0 / 3.0;

/// One full red-black SOR sweep (red half-sweep then black half-sweep) on
/// A·x = b.  Cells of one colour depend only on the other colour, so each
/// half-sweep is row-parallel.  The boundary ring of x is read, not
/// written.
void sor_sweep(Grid2D& x, const Grid2D& b, double omega,
               rt::Scheduler& sched);

/// One weighted-Jacobi sweep.  `scratch` must match x's size; on return x
/// holds the new iterate (contents are swapped, scratch holds the old).
void jacobi_sweep(Grid2D& x, const Grid2D& b, double omega, Grid2D& scratch,
                  rt::Scheduler& sched);

}  // namespace pbmg::solvers
