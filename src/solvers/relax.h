#pragma once

#include <span>
#include <string>

#include "grid/grid2d.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"

/// \file relax.h
/// Relaxation kernels: Red-Black Successive Over-Relaxation and weighted
/// Jacobi.
///
/// The paper restricts its search space to Red-Black SOR (§2.3): the
/// iterative shortcut uses ω_opt(N) — the optimal SOR weight for the 2-D
/// Poisson problem with Dirichlet boundaries — while the relaxations inside
/// RECURSE use the fixed weight 1.15 chosen by the authors.  Weighted
/// Jacobi is provided as the alternative the paper measured and rejected.

namespace pbmg::solvers {

/// Smoother selection — the relaxation axis of the choice space.  The
/// paper restricted its search to point Red-Black SOR after finding it
/// beat weighted Jacobi on its (isotropic Poisson) training data (§2.3);
/// Jacobi is kept for the ablation that verifies that finding
/// (bench/ablation_smoother).  The line variants (solvers/line_relax.h)
/// solve whole rows/columns exactly via batched Thomas tridiagonal
/// solves in zebra (odd/even line red-black) ordering; they are what
/// makes strong axis anisotropy (the `aniso1000` / `aniso-rot` operator
/// families) tractable, and — following the paper's central claim — the
/// choice between them is *tuned*, not hard-coded: the DP trainer
/// enumerates the smoother per level (tune/trainer.h) and the runtime-
/// parameter search races it as a categorical axis
/// (search/profile_search.h).
enum class RelaxKind {
  kSor,          ///< point red-black SOR ("point_rb", the paper's choice)
  kJacobi,       ///< weighted Jacobi (ablation only)
  kLineX,        ///< x-line zebra relaxation (tridiagonal solves per row)
  kLineY,        ///< y-line zebra relaxation (tridiagonal solves per column)
  kLineZebraAlt, ///< alternating zebra: one x-line + one y-line pass
};

/// Stable names used in tuned tables, cache keys and the search space:
/// "point_rb", "jacobi", "line_x", "line_y", "line_zebra_alt".
std::string to_string(RelaxKind kind);

/// Parses the names produced by to_string; throws InvalidArgument for
/// anything else.
RelaxKind parse_relax_kind(const std::string& name);

/// True for the three line-relaxation variants (which need ScratchPool
/// workspaces in addition to the scheduler).
constexpr bool is_line_relax(RelaxKind kind) {
  return kind == RelaxKind::kLineX || kind == RelaxKind::kLineY ||
         kind == RelaxKind::kLineZebraAlt;
}

/// All smoothers the autotuner may choose between (Jacobi is excluded:
/// the paper measured and rejected it, and keeping it out preserves the
/// historical candidate budget).  Order matters for the trainer: the
/// zebra variants come first so a robust candidate establishes the
/// pruning budget before point relaxation — which stalls on strongly
/// anisotropic operators — burns its full iteration cap.
inline constexpr RelaxKind kTunableSmoothers[] = {
    RelaxKind::kLineZebraAlt, RelaxKind::kLineX, RelaxKind::kLineY,
    RelaxKind::kSor};

/// Optimal SOR relaxation parameter for the 2-D discrete Poisson problem
/// with Dirichlet boundaries on an n×n grid:  ω = 2 / (1 + sin(π·h)),
/// h = 1/(n−1)   [Demmel, Applied Numerical Linear Algebra].
double omega_opt(int n);

/// SOR weight used inside RECURSE by the paper (§2.3).
inline constexpr double kRecurseOmega = 1.15;

/// Damping factor commonly used for weighted Jacobi smoothing.
inline constexpr double kJacobiOmega = 2.0 / 3.0;

/// Relaxation weights exposed to the runtime-parameter search
/// (src/search/): the paper fixes RECURSE's ω at 1.15 and the iterative
/// shortcut at ω_opt(N), but both are machine- and workload-sensitive, so
/// the population tuner searches them.  Searched values travel with the
/// pbmg::Engine that owns the solve: executors and trainers capture a
/// RelaxTunables by value at construction (no mid-solve global reads),
/// so concurrent engines can run different weights.  The process-wide
/// relax_tunables()/set_relax_tunables()/ScopedRelaxTunables surface
/// remains only as the default for legacy callers that construct
/// executors without an Engine; the reference algorithms keep the
/// paper's constants.
struct RelaxTunables {
  double recurse_omega = kRecurseOmega;  ///< ω of RECURSE's pre/post sweeps
  double omega_scale = 1.0;              ///< multiplier applied to ω_opt(N)
  /// Searched default smoother (the "smoother" categorical axis of
  /// make_profile_space): the profile-search workload runs under it, and
  /// API users can read it off a SearchedProfile to build VCycleOptions.
  /// Tuned executors use the *per-cell* smoother the DP recorded, which
  /// takes precedence; the paper-faithful reference drivers keep point
  /// SOR regardless.
  RelaxKind smoother = RelaxKind::kSor;
  /// Searched kernel implementation policy (the "layout" / "simd_width"
  /// axes of make_profile_space): legacy per-grid streaming vs the packed
  /// SoA-block layout and its SIMD lane count.  Bitwise result-invariant —
  /// this axis trades memory traffic only — so the tuner is free to race
  /// it like any other runtime parameter.
  grid::KernelPolicy kernels;
};

/// Currently active tunables (defaults reproduce the paper exactly).
const RelaxTunables& relax_tunables();

/// Throws InvalidArgument unless 0 < recurse_omega < 2 and
/// 0.1 <= omega_scale <= 1.5 (SOR diverges outside (0, 2)).  Shared by
/// set_relax_tunables and the search subsystem's deserializers so the two
/// can never drift apart.
void validate_relax_tunables(const RelaxTunables& tunables);

/// ω_opt(n) × scale, clamped into SOR's stability interval.  The search
/// objective and tuned_omega_opt both use this, so candidates are measured
/// under exactly the ω the tuned executor later runs with.
double scaled_omega_opt(int n, double scale);

/// Installs new tunables after validate_relax_tunables.  Setup-path API:
/// not thread-safe against running sweeps.
void set_relax_tunables(const RelaxTunables& tunables);

/// ω_opt(n) × the active omega_scale, clamped into (0, 2).
double tuned_omega_opt(int n);

/// The active RECURSE relaxation weight.
double tuned_recurse_omega();

/// RAII: swaps tunables in, restores the previous values on destruction.
class ScopedRelaxTunables {
 public:
  explicit ScopedRelaxTunables(const RelaxTunables& tunables);
  ~ScopedRelaxTunables();

  ScopedRelaxTunables(const ScopedRelaxTunables&) = delete;
  ScopedRelaxTunables& operator=(const ScopedRelaxTunables&) = delete;

 private:
  RelaxTunables previous_;
};

/// One full red-black SOR sweep (red half-sweep then black half-sweep) on
/// A·x = b.  Cells of one colour depend only on the other colour, so each
/// half-sweep is row-parallel.  The boundary ring of x is read, not
/// written.
void sor_sweep(Grid2D& x, const Grid2D& b, double omega,
               rt::Scheduler& sched);

/// One weighted-Jacobi sweep.  `scratch` must match x's size; on return x
/// holds the new iterate (contents are swapped, scratch holds the old).
void jacobi_sweep(Grid2D& x, const Grid2D& b, double omega, Grid2D& scratch,
                  rt::Scheduler& sched);

/// Red-black SOR sweep for a variable-coefficient operator: each update
/// divides by the cell's true diagonal (aW+aE+aN+aS)/h² + c instead of the
/// Poisson 4/h².  The Poisson fast path dispatches to sor_sweep above,
/// bit-for-bit.  A KernelPolicy selecting the packed layout runs the SoA
/// SIMD sweep (grid/packed_kernels.h), bitwise identical to legacy.
/// Requires x.n() == op.n().
void sor_sweep(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
               double omega, rt::Scheduler& sched,
               const grid::KernelPolicy& kernels = {});

/// Batched red-black SOR: one sweep of each xs[k] against bs[k] under one
/// operator, the K sweeps fused per parity (or colour) × row so each
/// coefficient row is loaded once and reused across right-hand-sides —
/// the bandwidth amortization batched serving buys.  The K iterates never
/// couple, and each k's update order is exactly the solo sor_sweep order,
/// so every slot is bitwise identical to K separate calls under any
/// thread count.  Dispatches Poisson / packed / 9-point / 5-point like
/// the solo overload.  Requires equal span sizes and all grids matching
/// op.n().
void sor_sweep_multi(const grid::StencilOp& op, std::span<Grid2D* const> xs,
                     std::span<const Grid2D* const> bs, double omega,
                     rt::Scheduler& sched,
                     const grid::KernelPolicy& kernels = {});

/// Weighted-Jacobi sweep for a variable-coefficient operator; same
/// diagonal handling, fast-path and kernel-policy contract as the SOR
/// overload.
void jacobi_sweep(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                  double omega, Grid2D& scratch, rt::Scheduler& sched,
                  const grid::KernelPolicy& kernels = {});

}  // namespace pbmg::solvers
