#include "support/timer.h"

#include <limits>

namespace pbmg {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

Deadline::Deadline(double budget_seconds)
    : deadline_seconds_(now_seconds() + budget_seconds) {}

Deadline Deadline::unlimited() {
  Deadline d(0.0);
  d.deadline_seconds_ = std::numeric_limits<double>::infinity();
  return d;
}

bool Deadline::expired() const { return now_seconds() >= deadline_seconds_; }

double Deadline::remaining() const { return deadline_seconds_ - now_seconds(); }

}  // namespace pbmg
