#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file argparse.h
/// A small command-line flag parser shared by benchmark binaries and
/// examples.  Supports `--name value`, `--name=value`, and boolean
/// `--flag` switches, plus `--help` text generation.

namespace pbmg {

/// Declarative command-line parser.  Register flags, then parse().
class ArgParser {
 public:
  /// \param program     argv[0]-style name used in help text.
  /// \param description one-line summary printed at the top of --help.
  ArgParser(std::string program, std::string description);

  /// Registers a string-valued flag with a default.
  void add_string(const std::string& name, std::string default_value,
                  std::string help);

  /// Registers an integer-valued flag with a default.
  void add_int(const std::string& name, std::int64_t default_value,
               std::string help);

  /// Registers a double-valued flag with a default.
  void add_double(const std::string& name, double default_value,
                  std::string help);

  /// Registers a boolean switch (defaults to false; presence sets true,
  /// `--name=false` clears).
  void add_flag(const std::string& name, std::string help);

  /// Parses argv.  Throws pbmg::InvalidArgument on unknown flags or
  /// malformed values.  Returns false if --help was requested (help text is
  /// then available via help_text(); callers should exit 0).
  bool parse(int argc, const char* const* argv);

  /// Typed accessors; throw InvalidArgument if the flag was not registered
  /// with a matching type.
  const std::string& get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Leftover positional arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Rendered help text.
  std::string help_text() const;

 private:
  enum class Kind { String, Int, Double, Flag };
  struct Spec {
    Kind kind;
    std::string help;
    std::string string_value;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool flag_value = false;
    std::string default_repr;
  };

  const Spec& find(const std::string& name, Kind kind) const;
  Spec& find_mutable(const std::string& name);

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

/// Reads an environment variable as int64; returns fallback when unset or
/// unparseable.  Used for knobs like PBMG_MAX_N that scale benchmark sizes.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads an environment variable as string; returns fallback when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace pbmg
