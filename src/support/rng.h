#pragma once

#include <array>
#include <cstdint>

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// The paper's experiments draw right-hand sides and boundary conditions
/// from uniform distributions over [-2^32, 2^32] (unbiased) and the same
/// distribution shifted by +2^31 (biased).  Reproducing tuned cycle shapes
/// requires bit-reproducible training data, so we ship our own generator
/// (xoshiro256++) instead of relying on unspecified standard-library
/// engines.  Streams can be split so that independent training instances
/// stay decorrelated.

namespace pbmg {

/// SplitMix64 generator, used for seeding xoshiro state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256++ generator: fast, high-quality, 2^256-1 period.
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", ACM TOMS 2021.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single user seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64();

  /// Returns a double uniform in [0, 1).
  double uniform01();

  /// Returns a double uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Returns an integer uniform in [0, n).  Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Returns an independent generator for a named substream.  The same
  /// (seed, stream) pair always produces the same stream, and distinct
  /// stream ids produce decorrelated sequences.
  Rng split(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t seed_;
};

}  // namespace pbmg
