#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.h"

namespace pbmg {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PBMG_CHECK(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  PBMG_CHECK(row.size() == headers_.size(),
             "TextTable row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "" : "  ");
      oss << row[c];
      oss << std::string(widths[c] - row[c].size(), ' ');
    }
    oss << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  oss << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string TextTable::to_csv() const {
  const auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "" : ",") << quote(row[c]);
    }
    oss << '\n';
  }
  return oss.str();
}

std::string format_double(double value, int digits) {
  if (std::isnan(value)) return "n/a";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

std::string format_seconds(double seconds) {
  if (std::isnan(seconds)) return "n/a";
  if (std::isinf(seconds)) return "inf";
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string format_accuracy(double accuracy) {
  const double exponent = std::log10(accuracy);
  const double rounded = std::round(exponent);
  char buf[32];
  if (std::abs(exponent - rounded) < 1e-9) {
    std::snprintf(buf, sizeof buf, "10^%d", static_cast<int>(rounded));
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", accuracy);
  }
  return buf;
}

}  // namespace pbmg
