#pragma once

#include <stdexcept>
#include <string>

/// \file error.h
/// Error-handling primitives shared by every pbmg module.
///
/// Following the C++ Core Guidelines we report precondition violations and
/// unrecoverable state through exceptions rather than error codes; hot loops
/// never throw, so the cost is confined to setup and configuration paths.

namespace pbmg {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes an argument that violates a documented
/// precondition (wrong grid size, invalid accuracy index, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a configuration file or JSON document cannot be parsed or
/// fails semantic validation.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine detects a state it cannot recover from
/// (non-positive-definite pivot in Cholesky, divergent iteration, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& message);
}  // namespace detail

}  // namespace pbmg

/// Validates a precondition; throws pbmg::InvalidArgument on failure.
/// Active in all build types: tuning correctness depends on these checks and
/// they guard only cold paths.
#define PBMG_CHECK(expr, message)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::pbmg::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                          (message));                      \
    }                                                                       \
  } while (false)

/// Heavyweight numerical invariant check (per-cell coefficient positivity,
/// diagonal dominance of assembled rows, ...).  Too costly for release hot
/// paths, so it compiles to nothing unless the build defines
/// PBMG_ASSERTIONS (cmake -DPBMG_ASSERTIONS=ON; CI runs the full suite in
/// that configuration at -O2).  The disabled form still parses `expr` so
/// assertions cannot bit-rot.
#if defined(PBMG_ASSERTIONS)
#define PBMG_NUM_ASSERT(expr, message) PBMG_CHECK(expr, message)
#else
#define PBMG_NUM_ASSERT(expr, message)                                      \
  do {                                                                      \
    if (false && !(expr)) {                                                 \
      ::pbmg::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                          (message));                      \
    }                                                                       \
  } while (false)
#endif
