#include "support/rng.h"

#include "support/error.h"

namespace pbmg {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1) with full mantissa resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PBMG_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PBMG_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

Rng Rng::split(std::uint64_t stream) const {
  // Derive a new seed by mixing the parent seed with the stream id through
  // SplitMix64; streams are decorrelated because SplitMix64 is a bijective
  // mixing of its 64-bit counter.
  SplitMix64 sm(seed_ ^ (0x6a09e667f3bcc909ull + stream * 0x3c6ef372fe94f82bull));
  return Rng(sm.next());
}

}  // namespace pbmg
