#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

/// \file json.h
/// Minimal JSON document model, parser, and writer.
///
/// PetaBricks persists tuned choices in a configuration file that later runs
/// load (paper §3.2.1).  We reproduce that workflow with JSON configs; this
/// module is the self-contained substrate (no external dependency).  It
/// supports the full JSON grammar except for `\u` surrogate pairs outside
/// the BMP, which configs never use.

namespace pbmg {

/// A JSON value: null, bool, number (double or int64), string, array, or
/// object.  Objects preserve key order via std::map (sorted) which is
/// sufficient and deterministic for config files.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Constructs null.
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::size_t i) : value_(static_cast<std::int64_t>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Accessors throw pbmg::ConfigError when the type does not match; this
  /// turns malformed config files into clear diagnostics rather than UB.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup.  `at` throws ConfigError when missing; `get`
  /// returns the fallback.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  double get(const std::string& key, double fallback) const;
  std::int64_t get(const std::string& key, std::int64_t fallback) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Inserts or replaces an object field.  Requires is_object().
  Json& set(const std::string& key, Json value);

  /// Appends to an array.  Requires is_array().
  Json& push_back(Json value);

  /// Serializes to a compact string (indent == 0) or pretty-printed with the
  /// given indentation width.
  std::string dump(int indent = 0) const;

  /// Parses a JSON document.  Throws pbmg::ConfigError with a line/column
  /// diagnostic on malformed input.
  static Json parse(const std::string& text);

  /// Convenience: empty object / empty array factories.
  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void dump_impl(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array,
               Object>
      value_;
};

/// Reads a whole file into a string.  Throws ConfigError if unreadable.
std::string read_text_file(const std::string& path);

/// Writes a string to a file (overwrites).  Throws ConfigError on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace pbmg
