#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"

namespace pbmg {

void SampleStats::add(double x) { samples_.push_back(x); }

std::vector<double> SampleStats::sorted() const {
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

double SampleStats::mean() const {
  PBMG_CHECK(!samples_.empty(), "mean of empty sample set");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  PBMG_CHECK(!samples_.empty(), "min of empty sample set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  PBMG_CHECK(!samples_.empty(), "max of empty sample set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::median() const { return percentile(50.0); }

double SampleStats::stddev() const {
  PBMG_CHECK(!samples_.empty(), "stddev of empty sample set");
  if (samples_.size() == 1) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleStats::geomean() const {
  PBMG_CHECK(!samples_.empty(), "geomean of empty sample set");
  double log_sum = 0.0;
  for (double x : samples_) {
    PBMG_CHECK(x > 0.0, "geomean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples_.size()));
}

double SampleStats::percentile(double p) const {
  PBMG_CHECK(!samples_.empty(), "percentile of empty sample set");
  PBMG_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  const std::vector<double> s = sorted();
  if (s.size() == 1) return s.front();
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

double log_log_slope(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  PBMG_CHECK(xs.size() == ys.size(), "log_log_slope: size mismatch");
  PBMG_CHECK(xs.size() >= 2, "log_log_slope: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    PBMG_CHECK(xs[i] > 0.0 && ys[i] > 0.0,
               "log_log_slope requires positive data");
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  PBMG_CHECK(denom != 0.0, "log_log_slope: degenerate x values");
  return (n * sxy - sx * sy) / denom;
}

}  // namespace pbmg
