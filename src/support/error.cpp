#include "support/error.h"

#include <sstream>

namespace pbmg::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream oss;
  oss << message << " [check `" << expr << "` failed at " << file << ':'
      << line << ']';
  throw InvalidArgument(oss.str());
}

}  // namespace pbmg::detail
