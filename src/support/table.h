#pragma once

#include <string>
#include <vector>

/// \file table.h
/// Text-table and CSV rendering used by the benchmark harness so every
/// figure/table binary prints the same rows/series the paper reports, in a
/// form that is both human-readable and machine-parsable.

namespace pbmg {

/// Column-aligned text table with a header row.  Cells are free-form
/// strings; numeric formatting helpers are provided.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row.  Must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Renders the table with aligned columns and a separator rule.
  std::string render() const;

  /// Renders the table as CSV (RFC-4180 quoting for cells containing
  /// commas or quotes).
  std::string to_csv() const;

  /// Number of data rows.
  std::size_t row_count() const { return rows_.size(); }

  /// Column headers (machine-readable emission, e.g. BENCH_*.json).
  const std::vector<std::string>& headers() const { return headers_; }

  /// Data rows in insertion order.
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (trailing zeros
/// trimmed); "n/a" for NaN, "inf" for infinities.
std::string format_double(double value, int digits = 4);

/// Formats seconds adaptively (e.g. "1.23 s", "4.56 ms", "789 us").
std::string format_seconds(double seconds);

/// Formats an accuracy level like 1e9 as "10^9" to match the paper's
/// notation.
std::string format_accuracy(double accuracy);

}  // namespace pbmg
