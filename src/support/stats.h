#pragma once

#include <cstddef>
#include <vector>

/// \file stats.h
/// Small statistics helpers for timing measurements and benchmark tables.

namespace pbmg {

/// Accumulates samples and answers summary queries.  Storage is O(n) so the
/// exact median/percentiles can be reported; benchmark sample counts are
/// tiny.
class SampleStats {
 public:
  /// Adds one sample.
  void add(double x);

  /// Number of samples added.
  std::size_t count() const { return samples_.size(); }

  /// Arithmetic mean.  Requires count() > 0.
  double mean() const;

  /// Smallest sample.  Requires count() > 0.
  double min() const;

  /// Largest sample.  Requires count() > 0.
  double max() const;

  /// Median (average of the two middle samples for even counts).
  /// Requires count() > 0.
  double median() const;

  /// Sample standard deviation (n-1 denominator); 0 for a single sample.
  double stddev() const;

  /// Geometric mean.  Requires count() > 0 and all samples > 0.
  double geomean() const;

  /// p-th percentile via linear interpolation, p in [0, 100].
  /// Requires count() > 0.
  double percentile(double p) const;

  /// All samples in insertion order.
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> sorted() const;
  std::vector<double> samples_;
};

/// Ordinary least squares fit of log(y) = a + b * log(x); returns the
/// exponent b.  Used to report empirical complexity exponents (paper's
/// Direct = N^4, SOR = N^3, Multigrid = N^2 table).  Requires xs and ys to
/// have equal size >= 2 and strictly positive entries.
double log_log_slope(const std::vector<double>& xs,
                     const std::vector<double>& ys);

}  // namespace pbmg
