#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.h"

namespace pbmg {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw ConfigError(std::string("JSON value is not ") + expected);
}

/// Recursive-descent JSON parser with line/column diagnostics.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  Json parse_value() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        expect_literal("true");
        return Json(true);
      case 'f':
        expect_literal("false");
        return Json(false);
      case 'n':
        expect_literal("null");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    consume('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      skip_ws();
      consume(':');
      skip_ws();
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    consume('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = parse_hex4();
            append_utf8(out, code);
            break;
          }
          default:
            fail("invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    try {
      if (is_integer) {
        return Json(static_cast<std::int64_t>(std::stoll(token)));
      }
      return Json(std::stod(token));
    } catch (const std::exception&) {
      // Integer overflow (e.g. > 2^63): fall back to double.
      try {
        return Json(std::stod(token));
      } catch (const std::exception&) {
        fail("unparseable number '" + token + "'");
      }
    }
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("expected literal '") + lit + "'");
      }
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream oss;
    oss << "JSON parse error at line " << line << ", column " << col << ": "
        << message;
    throw ConfigError(oss.str());
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_double(std::string& out, double d) {
  if (std::isfinite(d)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  } else {
    // JSON has no infinity/NaN; persist as null (configs validate on load).
    out += "null";
  }
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  if (std::holds_alternative<double>(value_)) return std::get<double>(value_);
  if (std::holds_alternative<std::int64_t>(value_)) {
    return static_cast<double>(std::get<std::int64_t>(value_));
  }
  type_error("a number");
}

std::int64_t Json::as_int() const {
  if (std::holds_alternative<std::int64_t>(value_)) {
    return std::get<std::int64_t>(value_);
  }
  if (std::holds_alternative<double>(value_)) {
    const double d = std::get<double>(value_);
    const auto i = static_cast<std::int64_t>(d);
    if (static_cast<double>(i) == d) return i;
  }
  type_error("an integer");
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

Json::Array& Json::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) {
    throw ConfigError("missing required JSON field '" + key + "'");
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

double Json::get(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::int64_t Json::get(const std::string& key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

std::string Json::get(const std::string& key,
                      const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

Json& Json::set(const std::string& key, Json value) {
  as_object()[key] = std::move(value);
  return *this;
}

Json& Json::push_back(Json value) {
  as_array().push_back(std::move(value));
  return *this;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const auto pad = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (std::holds_alternative<std::int64_t>(value_)) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (std::holds_alternative<double>(value_)) {
    dump_double(out, std::get<double>(value_));
  } else if (is_string()) {
    dump_string(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out.push_back(',');
      pad(depth + 1);
      arr[i].dump_impl(out, indent, depth + 1);
    }
    if (!arr.empty()) pad(depth);
    out.push_back(']');
  } else {
    const Object& obj = as_object();
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      pad(depth + 1);
      dump_string(out, key);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      value.dump_impl(out, indent, depth + 1);
    }
    if (!obj.empty()) pad(depth);
    out.push_back('}');
  }
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open file for reading: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ConfigError("cannot open file for writing: " + path);
  out << content;
  if (!out) throw ConfigError("failed while writing file: " + path);
}

}  // namespace pbmg
