#include "support/argparse.h"

#include <cstdlib>
#include <sstream>

#include "support/error.h"

namespace pbmg {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_string(const std::string& name, std::string default_value,
                           std::string help) {
  Spec spec;
  spec.kind = Kind::String;
  spec.help = std::move(help);
  spec.default_repr = default_value;
  spec.string_value = std::move(default_value);
  specs_[name] = std::move(spec);
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        std::string help) {
  Spec spec;
  spec.kind = Kind::Int;
  spec.help = std::move(help);
  spec.default_repr = std::to_string(default_value);
  spec.int_value = default_value;
  specs_[name] = std::move(spec);
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           std::string help) {
  Spec spec;
  spec.kind = Kind::Double;
  spec.help = std::move(help);
  spec.default_repr = std::to_string(default_value);
  spec.double_value = default_value;
  specs_[name] = std::move(spec);
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, std::string help) {
  Spec spec;
  spec.kind = Kind::Flag;
  spec.help = std::move(help);
  spec.default_repr = "false";
  spec.flag_value = false;
  specs_[name] = std::move(spec);
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw InvalidArgument("unknown flag --" + name + " (try --help)");
    }
    Spec& spec = it->second;
    if (spec.kind == Kind::Flag) {
      spec.flag_value = !value || *value == "true" || *value == "1";
      continue;
    }
    if (!value) {
      if (i + 1 >= argc) {
        throw InvalidArgument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    try {
      switch (spec.kind) {
        case Kind::String:
          spec.string_value = *value;
          break;
        case Kind::Int:
          spec.int_value = std::stoll(*value);
          break;
        case Kind::Double:
          spec.double_value = std::stod(*value);
          break;
        case Kind::Flag:
          break;  // handled above
      }
    } catch (const std::exception&) {
      throw InvalidArgument("invalid value '" + *value + "' for flag --" +
                            name);
    }
  }
  return true;
}

const ArgParser::Spec& ArgParser::find(const std::string& name,
                                       Kind kind) const {
  auto it = specs_.find(name);
  if (it == specs_.end() || it->second.kind != kind) {
    throw InvalidArgument("flag --" + name +
                          " was not registered with the requested type");
  }
  return it->second;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::String).string_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return find(name, Kind::Int).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return find(name, Kind::Double).double_value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).flag_value;
}

std::string ArgParser::help_text() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    oss << "  --" << name;
    switch (spec.kind) {
      case Kind::String: oss << " <string>"; break;
      case Kind::Int: oss << " <int>"; break;
      case Kind::Double: oss << " <float>"; break;
      case Kind::Flag: break;
    }
    oss << "  (default: " << spec.default_repr << ")\n      " << spec.help
        << "\n";
  }
  return oss.str();
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  try {
    return std::stoll(raw);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace pbmg
