#pragma once

#include <chrono>
#include <cstdint>

/// \file timer.h
/// Wall-clock measurement used by the autotuner and the benchmark harness.

namespace pbmg {

/// Returns a monotonic wall-clock timestamp in seconds.
double now_seconds();

/// Simple RAII-free stopwatch.  `elapsed()` may be called repeatedly;
/// `restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Resets the stopwatch origin to now.
  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Budgeted deadline: lets long-running measurement loops bail out early
/// once they can no longer beat the best candidate seen so far.  A budget
/// of infinity never expires.
class Deadline {
 public:
  /// Creates a deadline `budget_seconds` from now.
  explicit Deadline(double budget_seconds);

  /// Creates a deadline that never expires.
  static Deadline unlimited();

  /// True once the budget is exhausted.
  bool expired() const;

  /// Seconds remaining (negative once expired, +inf for unlimited).
  double remaining() const;

 private:
  double deadline_seconds_;  // absolute time in now_seconds() units
};

}  // namespace pbmg
