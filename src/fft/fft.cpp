#include "fft/fft.h"

#include <cmath>

#include "support/error.h"

namespace pbmg::fft {

void fft_inplace(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  PBMG_CHECK(is_power_of_two(static_cast<int>(n)),
             "fft_inplace: length must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void dst1_inplace(double* v, int m, std::vector<std::complex<double>>& work) {
  PBMG_CHECK(m >= 1, "dst1_inplace: m must be >= 1");
  PBMG_CHECK(is_power_of_two(m + 1), "dst1_inplace: m + 1 must be 2^k");
  const std::size_t len = 2 * static_cast<std::size_t>(m + 1);
  PBMG_CHECK(work.size() == len, "dst1_inplace: workspace size mismatch");
  // Odd extension: y_0 = y_{m+1} = 0, y_j = v_j, y_{L−j} = −v_j.
  work[0] = 0.0;
  work[static_cast<std::size_t>(m + 1)] = 0.0;
  for (int j = 1; j <= m; ++j) {
    work[static_cast<std::size_t>(j)] = v[j - 1];
    work[len - static_cast<std::size_t>(j)] = -v[j - 1];
  }
  fft_inplace(work, /*inverse=*/false);
  // Y_k = −2i·X_k  ⇒  X_k = −Im(Y_k)/2.
  for (int k = 1; k <= m; ++k) {
    v[k - 1] = -0.5 * work[static_cast<std::size_t>(k)].imag();
  }
}

}  // namespace pbmg::fft
