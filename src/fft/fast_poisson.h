#pragma once

#include "grid/grid2d.h"
#include "grid/problem.h"
#include "runtime/scheduler.h"

/// \file fast_poisson.h
/// Exact O(N² log N) Poisson solver via 2-D sine-transform diagonalisation.
///
/// The discrete 5-point Laplacian with Dirichlet boundaries is diagonal in
/// the DST-I basis with eigenvalues
///   λ(k,l) = (4 − 2cos(πk/(M+1)) − 2cos(πl/(M+1))) / h²,  M = N−2.
/// Solving in that basis yields the exact solution of the *discrete* system
/// to machine precision, which the tuner uses as the `x_opt` of the paper's
/// accuracy metric.

namespace pbmg::fft {

/// Direct spectral solver for the n×n Poisson problem (n = 2^k + 1).
class FastPoissonSolver {
 public:
  /// Prepares eigenvalue tables for grid side n.
  explicit FastPoissonSolver(int n);

  /// Grid side this solver was built for.
  int n() const { return n_; }

  /// Solves A·x = b with the Dirichlet ring taken from `x_boundary` and
  /// writes the full solution (ring included) into `out`.  All grids must
  /// have side n().
  void solve(const Grid2D& b, const Grid2D& x_boundary, Grid2D& out,
             rt::Scheduler& sched) const;

 private:
  int n_;
  std::vector<double> lambda_1d_;  // 1-D eigenvalues (4−2cos(πk/(M+1)))·... split
};

/// Convenience oracle: exact solution of a problem instance on `sched`.
Grid2D exact_solution(const PoissonProblem& p, rt::Scheduler& sched);

}  // namespace pbmg::fft
