#pragma once

#include <complex>
#include <vector>

/// \file fft.h
/// Radix-2 complex FFT and the type-I discrete sine transform built on it.
///
/// These power the fast Poisson solver (fft/fast_poisson.h) that serves as
/// the accuracy oracle `x_opt` for the tuner: the paper's accuracy metric
/// compares every candidate against the optimal solution, so the oracle
/// must be exact to machine precision and cheap (O(N² log N)).

namespace pbmg::fft {

/// In-place iterative radix-2 Cooley-Tukey FFT.  `a.size()` must be a
/// power of two (throws InvalidArgument otherwise).  When `inverse` is
/// true computes the unnormalised inverse transform (caller divides by n).
void fft_inplace(std::vector<std::complex<double>>& a, bool inverse);

/// Type-I discrete sine transform of length m:
///   X[k] = Σ_{j=1..m} v[j−1]·sin(π·j·k/(m+1)),  k = 1..m  (unnormalised).
/// Requires m + 1 to be a power of two.  `work` must have size 2(m+1) and
/// is clobbered.  DST-I is self-inverse up to the factor 2/(m+1).
void dst1_inplace(double* v, int m, std::vector<std::complex<double>>& work);

/// True when x is a power of two (x >= 1).
constexpr bool is_power_of_two(int x) { return x >= 1 && (x & (x - 1)) == 0; }

}  // namespace pbmg::fft
