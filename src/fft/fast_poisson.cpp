#include "fft/fast_poisson.h"

#include <cmath>
#include <vector>

#include "fft/fft.h"
#include "grid/level.h"

namespace pbmg::fft {

namespace {

/// Applies DST-I to every row of the m×m row-major matrix `data`.
void dst_rows(std::vector<double>& data, int m, rt::Scheduler& sched) {
  sched.parallel_for(0, m, sched.grain_for(m, m),
                     [&](std::int64_t ib, std::int64_t ie) {
                       std::vector<std::complex<double>> work(
                           2 * static_cast<std::size_t>(m + 1));
                       for (int i = static_cast<int>(ib);
                            i < static_cast<int>(ie); ++i) {
                         dst1_inplace(
                             data.data() +
                                 static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(m),
                             m, work);
                       }
                     });
}

/// Transposes the m×m row-major matrix in place (blocked for locality).
void transpose(std::vector<double>& data, int m, rt::Scheduler& sched) {
  constexpr int kBlock = 32;
  sched.parallel_for(
      0, (m + kBlock - 1) / kBlock, 1,
      [&](std::int64_t bb, std::int64_t be) {
        for (int bi = static_cast<int>(bb); bi < static_cast<int>(be); ++bi) {
          const int i0 = bi * kBlock;
          const int i1 = std::min(i0 + kBlock, m);
          // Only process blocks on or above the diagonal; swap with mirror.
          for (int j0 = i0; j0 < m; j0 += kBlock) {
            const int j1 = std::min(j0 + kBlock, m);
            for (int i = i0; i < i1; ++i) {
              const int jstart = (j0 == i0) ? std::max(j0, i + 1) : j0;
              for (int j = jstart; j < j1; ++j) {
                std::swap(data[static_cast<std::size_t>(i) * m + j],
                          data[static_cast<std::size_t>(j) * m + i]);
              }
            }
          }
        }
      });
}

}  // namespace

FastPoissonSolver::FastPoissonSolver(int n) : n_(n) {
  PBMG_CHECK(is_valid_grid_size(n), "FastPoissonSolver: n must be 2^k + 1");
  const int m = n - 2;
  lambda_1d_.resize(static_cast<std::size_t>(m));
  for (int k = 1; k <= m; ++k) {
    lambda_1d_[static_cast<std::size_t>(k - 1)] =
        2.0 - 2.0 * std::cos(M_PI * k / (m + 1));
  }
}

void FastPoissonSolver::solve(const Grid2D& b, const Grid2D& x_boundary,
                              Grid2D& out, rt::Scheduler& sched) const {
  PBMG_CHECK(b.n() == n_ && x_boundary.n() == n_ && out.n() == n_,
             "FastPoissonSolver::solve: grid size mismatch");
  const int m = n_ - 2;
  const double inv_h2 =
      static_cast<double>(n_ - 1) * static_cast<double>(n_ - 1);

  // Gather the interior RHS with the Dirichlet lift.
  std::vector<double> f(static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(m));
  sched.parallel_for(
      1, n_ - 1, sched.grain_for(n_ - 2, n_ - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          double* dst = f.data() + static_cast<std::size_t>(i - 1) * m;
          const double* src = b.row(i);
          for (int j = 1; j <= m; ++j) dst[j - 1] = src[j];
          if (i == 1) {
            for (int j = 1; j <= m; ++j) dst[j - 1] += inv_h2 * x_boundary(0, j);
          }
          if (i == m) {
            for (int j = 1; j <= m; ++j) {
              dst[j - 1] += inv_h2 * x_boundary(n_ - 1, j);
            }
          }
          dst[0] += inv_h2 * x_boundary(i, 0);
          dst[m - 1] += inv_h2 * x_boundary(i, n_ - 1);
        }
      });

  // Forward transform along both dimensions (λ is symmetric in (k,l), so
  // the transposed orientation between the two passes is harmless).
  dst_rows(f, m, sched);
  transpose(f, m, sched);
  dst_rows(f, m, sched);

  // Divide by eigenvalues; fold in the DST-I inverse normalisation
  // (2/(m+1)) per dimension.
  const double norm = 2.0 / (m + 1);
  const double scale = norm * norm;
  sched.parallel_for(0, m, sched.grain_for(m, m),
                     [&](std::int64_t kb, std::int64_t ke) {
                       for (int k = static_cast<int>(kb);
                            k < static_cast<int>(ke); ++k) {
                         double* row = f.data() + static_cast<std::size_t>(k) * m;
                         const double mu_k = lambda_1d_[static_cast<std::size_t>(k)];
                         for (int l = 0; l < m; ++l) {
                           const double lambda =
                               inv_h2 *
                               (mu_k + lambda_1d_[static_cast<std::size_t>(l)]);
                           row[l] *= scale / lambda;
                         }
                       }
                     });

  // Inverse = forward transforms again (self-inverse basis).
  dst_rows(f, m, sched);
  transpose(f, m, sched);
  dst_rows(f, m, sched);

  // Scatter: interior from f, ring from x_boundary.
  out.copy_boundary_from(x_boundary);
  sched.parallel_for(1, n_ - 1, sched.grain_for(n_ - 2, n_ - 2),
                     [&](std::int64_t ib, std::int64_t ie) {
                       for (int i = static_cast<int>(ib);
                            i < static_cast<int>(ie); ++i) {
                         const double* src =
                             f.data() + static_cast<std::size_t>(i - 1) * m;
                         double* dst = out.row(i);
                         for (int j = 1; j <= m; ++j) dst[j] = src[j - 1];
                       }
                     });
}

Grid2D exact_solution(const PoissonProblem& p, rt::Scheduler& sched) {
  FastPoissonSolver solver(p.n());
  Grid2D out(p.n(), 0.0);
  solver.solve(p.b, p.x0, out, sched);
  return out;
}

}  // namespace pbmg::fft
