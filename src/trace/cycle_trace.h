#pragma once

#include <string>
#include <vector>

/// \file cycle_trace.h
/// Event-level tracing of multigrid executions and ASCII rendering of the
/// resulting cycle shapes, reproducing the paper's cycle diagrams
/// (Figures 5 and 14) in extended multigrid notation: time flows left to
/// right, downward moves are restrictions, upward moves interpolations,
/// dots are relaxations, `D` is a direct solve and `S` an iterative (SOR)
/// solve.

namespace pbmg::trace {

/// Kinds of events a solver emits.
enum class Op {
  kRelax,        ///< one relaxation sweep at `level`
  kRestrict,     ///< residual restriction from `level` to `level − 1`
  kInterpolate,  ///< correction interpolation from `level − 1` to `level`
  kDirect,       ///< direct solve at `level`
  kIterative,    ///< iterative (SOR) solve at `level`; detail = sweeps
};

/// One trace event.  `level` is the multigrid recursion level
/// (grid side 2^level + 1); `detail` carries op-specific data.
struct Event {
  Op op;
  int level;
  int detail = 0;
};

/// Collects events during a traced execution.  Not thread-safe by design:
/// traced runs are diagnostic, single-flow executions.
class CycleTracer {
 public:
  /// Appends an event.
  void record(Op op, int level, int detail = 0) {
    events_.push_back(Event{op, level, detail});
  }

  /// All recorded events in order.
  const std::vector<Event>& events() const { return events_; }

  /// Discards recorded events.
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Renders an event sequence as an ASCII cycle diagram.  Levels label the
/// rows (finest at the top); every event advances one column.
///   *  relaxation      \\  restriction      /  interpolation
///   D  direct solve    S<n>  iterative solve of n sweeps
std::string render_cycle(const std::vector<Event>& events);

/// One-line summary: counts of each op kind (useful in tests and logs).
std::string summarize(const std::vector<Event>& events);

}  // namespace pbmg::trace
