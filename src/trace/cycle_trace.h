#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/json.h"

/// \file cycle_trace.h
/// Event-level tracing of multigrid executions and ASCII rendering of the
/// resulting cycle shapes, reproducing the paper's cycle diagrams
/// (Figures 5 and 14) in extended multigrid notation: time flows left to
/// right, downward moves are restrictions, upward moves interpolations,
/// dots are relaxations, `D` is a direct solve and `S` an iterative (SOR)
/// solve.

namespace pbmg::trace {

/// Kinds of events a solver emits.
enum class Op {
  kRelax,        ///< one relaxation sweep at `level`
  kRestrict,     ///< residual restriction from `level` to `level − 1`
  kInterpolate,  ///< correction interpolation from `level − 1` to `level`
  kDirect,       ///< direct solve at `level`
  kIterative,    ///< iterative (SOR) solve at `level`; detail = sweeps
};

/// Short stable identifier ("relax", "restrict", ...).
const char* to_string(Op op);

/// One trace event.  `level` is the multigrid recursion level
/// (grid side 2^level + 1); `detail` carries op-specific data.
struct Event {
  Op op;
  int level;
  int detail = 0;
};

/// Collects events during a traced execution.  Not thread-safe by design:
/// traced runs are diagnostic, single-flow executions.  PBMG_ASSERTIONS
/// builds enforce the contract: the first record() claims the tracer for
/// its thread and a record() from any other thread throws (clear()
/// releases the claim), so an accidentally shared tracer fails loudly in
/// CI instead of silently corrupting its event vector.
class CycleTracer {
 public:
  /// Appends an event.
  void record(Op op, int level, int detail = 0) {
#if defined(PBMG_ASSERTIONS)
    assert_single_flow();
#endif
    events_.push_back(Event{op, level, detail});
  }

  /// All recorded events in order.
  const std::vector<Event>& events() const { return events_; }

  /// Discards recorded events (and releases the owner-thread claim).
  void clear() {
    events_.clear();
#if defined(PBMG_ASSERTIONS)
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
  }

 private:
#if defined(PBMG_ASSERTIONS)
  // PBMG_ASSERTIONS is a PUBLIC compile definition of the pbmg target, so
  // every consumer sees the same layout for this conditional member.
  void assert_single_flow() {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (!owner_.compare_exchange_strong(expected, self,
                                        std::memory_order_relaxed)) {
      PBMG_CHECK(expected == self,
                 "CycleTracer: record() from a second thread — tracers are "
                 "single-flow diagnostics; give each flow its own tracer");
    }
  }

  std::atomic<std::thread::id> owner_{};
#endif
  std::vector<Event> events_;
};

/// Renders an event sequence as an ASCII cycle diagram.  Levels label the
/// rows (finest at the top); every event advances one column.
///   *  relaxation      \\  restriction      /  interpolation
///   D  direct solve    S<n>  iterative solve of n sweeps
std::string render_cycle(const std::vector<Event>& events);

/// One-line summary: counts of each op kind (useful in tests and logs).
std::string summarize(const std::vector<Event>& events);

/// JSON exposition: an array of {"op": "...", "level": L, "detail": d}
/// rows in event order, embeddable next to obs:: metrics documents.
Json to_json(const std::vector<Event>& events);

}  // namespace pbmg::trace
