#include "trace/cycle_trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/error.h"

namespace pbmg::trace {

namespace {

/// Simple growable character canvas with (row, col) addressing.
class Canvas {
 public:
  explicit Canvas(int rows) : lines_(static_cast<std::size_t>(rows)) {}

  void put(int row, int col, char c) {
    auto& line = lines_[static_cast<std::size_t>(row)];
    if (static_cast<int>(line.size()) <= col) {
      line.resize(static_cast<std::size_t>(col) + 1, ' ');
    }
    line[static_cast<std::size_t>(col)] = c;
  }

  int put_string(int row, int col, const std::string& s) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      put(row, col + static_cast<int>(i), s[i]);
    }
    return col + static_cast<int>(s.size());
  }

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

}  // namespace

std::string render_cycle(const std::vector<Event>& events) {
  if (events.empty()) return "(empty trace)\n";
  int top = events.front().level;
  int bottom = events.front().level;
  for (const Event& e : events) {
    top = std::max(top, e.level);
    // Restriction touches level − 1 implicitly.
    bottom = std::min(bottom, e.op == Op::kRestrict ? e.level - 1 : e.level);
  }
  // Two text rows per level gap: level k sits at row 2·(top−k), the
  // between-row below it holds the restriction/interpolation slashes.
  const int rows = 2 * (top - bottom) + 1;
  Canvas canvas(rows);
  const auto level_row = [top](int level) { return 2 * (top - level); };
  int col = 0;
  for (const Event& e : events) {
    switch (e.op) {
      case Op::kRelax:
        canvas.put(level_row(e.level), col, '*');
        col += 1;
        break;
      case Op::kRestrict:
        canvas.put(level_row(e.level) + 1, col, '\\');
        col += 1;
        break;
      case Op::kInterpolate:
        canvas.put(level_row(e.level) + 1, col, '/');
        col += 1;
        break;
      case Op::kDirect:
        col = canvas.put_string(level_row(e.level), col, "D");
        break;
      case Op::kIterative: {
        std::ostringstream token;
        token << 'S' << e.detail;
        col = canvas.put_string(level_row(e.level), col, token.str());
        break;
      }
    }
  }
  std::ostringstream out;
  for (int r = 0; r < rows; ++r) {
    if (r % 2 == 0) {
      const int level = top - r / 2;
      out << "level " << (level < 10 ? " " : "") << level << " | ";
    } else {
      out << "         | ";
    }
    out << canvas.lines()[static_cast<std::size_t>(r)] << '\n';
  }
  return out.str();
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kRelax:
      return "relax";
    case Op::kRestrict:
      return "restrict";
    case Op::kInterpolate:
      return "interpolate";
    case Op::kDirect:
      return "direct";
    case Op::kIterative:
      return "iterative";
  }
  return "unknown";
}

std::string summarize(const std::vector<Event>& events) {
  std::map<Op, int> counts;
  for (const Event& e : events) counts[e.op]++;
  std::ostringstream oss;
  oss << "relax=" << counts[Op::kRelax]
      << " restrict=" << counts[Op::kRestrict]
      << " interpolate=" << counts[Op::kInterpolate]
      << " direct=" << counts[Op::kDirect]
      << " iterative=" << counts[Op::kIterative];
  return oss.str();
}

Json to_json(const std::vector<Event>& events) {
  Json rows = Json::array();
  for (const Event& e : events) {
    Json row = Json::object();
    row.set("op", std::string(to_string(e.op)));
    row.set("level", e.level);
    if (e.detail != 0) row.set("detail", e.detail);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace pbmg::trace
