// Reproduces Figure 6: time to solve Poisson to accuracy 10^9 on unbiased
// uniform random data, 8 worker threads, comparing the basic Direct and
// SOR solvers and the standard V-cycle multigrid against the autotuned
// algorithm.  Expected shape: direct wins only at the smallest sizes, SOR
// falls behind quickly, the autotuned algorithm is never worse than the
// reference multigrid and strictly better at small sizes.

#include <cmath>
#include <string>

#include "common/harness.h"
#include "grid/level.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig06_algorithm_comparison",
      "Fig 6: direct/SOR/multigrid/autotuned to accuracy 10^9 (unbiased)");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  constexpr double kTarget = 1e9;

  const auto profile = rt::harpertown_profile();
  Engine engine(engine_options(settings, profile));
  const auto config = get_tuned_config(settings, engine,
                                       InputDistribution::kUnbiased,
                                       settings.max_level);
  const int acc_index = config.accuracy_index(kTarget);

  const int direct_max_level = std::min(settings.max_level, 8);  // N <= 257
  const int sor_max_level = std::min(settings.max_level, 10);    // N <= 1025

  TextTable table(
      {"N", "direct (s)", "sor (s)", "multigrid (s)", "autotuned (s)"});
  for (int level = 2; level <= settings.max_level; ++level) {
    const int n = size_of_level(level);
    const auto inst = eval_instance(settings, engine, n,
                                    InputDistribution::kUnbiased, /*salt=*/6);
    const double direct = level <= direct_max_level
                              ? run_direct(settings, engine, inst)
                              : std::nan("");
    const double sor =
        level <= sor_max_level
            ? run_sor(settings, engine, inst, kTarget, 16 * n + 2000)
            : std::nan("");
    const double mg = run_reference_v(settings, engine, inst, kTarget);
    const double tuned =
        run_tuned_v(settings, engine, config, inst, acc_index);
    table.add_row({std::to_string(n), format_double(direct),
                   format_double(sor), format_double(mg),
                   format_double(tuned)});
    progress("fig06: N=" + std::to_string(n) + " done");
  }
  emit_table(settings, "fig06_algorithm_comparison",
             "Figure 6: time to accuracy 10^9, unbiased data, 8 threads",
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
