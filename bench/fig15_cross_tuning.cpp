// Reproduces the §4.3 cross-tuning experiment (reported in prose in the
// paper): running a configuration tuned on machine A under machine B is
// slower than the natively tuned configuration (the paper reports 29% and
// 79% slowdowns between the Intel and Sun machines).  We run every
// (trained-on, run-on) profile pair for the tuned FULL-MULTIGRID at
// accuracy 10^5 and report the slowdown relative to the native config.

#include <cmath>
#include <memory>

#include "common/harness.h"
#include "grid/level.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig15_cross_tuning",
      "§4.3: cross-machine penalty of tuned configurations");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const rt::MachineProfile profiles[] = {rt::harpertown_profile(),
                                         rt::barcelona_profile(),
                                         rt::niagara_profile()};
  const int n = size_of_level(settings.max_level);

  // Train all three configs first (cache-friendly order).  Each profile
  // is its own Engine; they coexist for the whole run.
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<tune::TunedConfig> configs;
  for (const auto& profile : profiles) {
    engines.push_back(
        std::make_unique<Engine>(engine_options(settings, profile)));
    configs.push_back(get_tuned_config(settings, *engines.back(),
                                       InputDistribution::kUnbiased,
                                       settings.max_level));
  }

  Settings timing = settings;
  timing.trials = std::max(settings.trials, 3);
  TextTable table({"run on \\ trained on", "harpertown", "barcelona",
                   "niagara", "cross-tuned slowdown"});
  for (int run = 0; run < 3; ++run) {
    Engine& engine = *engines[static_cast<std::size_t>(run)];
    const auto inst = eval_instance(settings, engine, n,
                                    InputDistribution::kUnbiased, /*salt=*/15);
    double native = std::nan("");
    double worst_ratio = 1.0;
    std::vector<double> times(3);
    for (int trained = 0; trained < 3; ++trained) {
      const auto& config = configs[static_cast<std::size_t>(trained)];
      times[static_cast<std::size_t>(trained)] = run_tuned_fmg(
          timing, engine, config, inst, config.accuracy_index(1e5));
    }
    native = times[static_cast<std::size_t>(run)];
    for (int trained = 0; trained < 3; ++trained) {
      if (trained != run && std::isfinite(times[static_cast<std::size_t>(trained)])) {
        worst_ratio = std::max(
            worst_ratio, times[static_cast<std::size_t>(trained)] / native);
      }
    }
    table.add_row({profiles[run].name, format_double(times[0]),
                   format_double(times[1]), format_double(times[2]),
                   format_double((worst_ratio - 1.0) * 100.0, 3) + "%"});
    progress("fig15: run-on " + profiles[run].name + " done");
  }
  emit_table(settings, "fig15_cross_tuning",
             "§4.3 cross-tuning: tuned-FMG time (s) by (run-on, trained-on) "
             "profile, N=" + std::to_string(n) + ", accuracy 10^5",
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
