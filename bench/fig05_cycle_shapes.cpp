// Reproduces Figure 5: tuned multigrid V cycles (a: unbiased, b: biased)
// and tuned full multigrid cycles (c: unbiased, d: biased) created by the
// autotuner on the AMD-like profile, for final accuracy levels 10^1, 10^3,
// 10^5 and 10^7.  Cycles are rendered in extended multigrid notation
// (time flows right; '*' relaxation, '\\'/'/' restriction/interpolation,
// 'D' direct solve, 'S<n>' iterative solve).

#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/harness.h"
#include "grid/level.h"
#include "trace/cycle_trace.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

void render_cycles(const Settings& settings, Engine& engine,
                   const tune::TunedConfig& config, InputDistribution dist,
                   bool fmg, std::ostringstream& out) {
  const int n = size_of_level(settings.max_level);
  const auto inst = eval_instance(settings, engine, n, dist, /*salt=*/5);
  const char* roman[] = {"i", "ii", "iii", "iv"};
  for (int i = 0; i < 4 && i < config.accuracy_count(); ++i) {
    trace::CycleTracer tracer;
    tune::TunedExecutor executor(config, engine.scheduler(), engine.direct(),
                                 engine.scratch(), &tracer, engine.relax());
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    if (fmg) {
      executor.run_fmg(x, inst.problem.b, i);
    } else {
      executor.run_v(x, inst.problem.b, i);
    }
    out << "  " << roman[i] << ") accuracy "
        << format_accuracy(config.accuracies()[static_cast<std::size_t>(i)])
        << "   [" << trace::summarize(tracer.events()) << "]\n"
        << trace::render_cycle(tracer.events()) << '\n';
  }
}

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(argc, argv, "fig05_cycle_shapes",
                              "Fig 5: tuned V and full-MG cycle shapes");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const auto profile = rt::barcelona_profile();
  Engine engine(engine_options(settings, profile));

  std::ostringstream out;
  const char* sub = "ab";
  int s = 0;
  for (auto dist :
       {InputDistribution::kUnbiased, InputDistribution::kBiased}) {
    const auto config =
        get_tuned_config(settings, engine, dist, settings.max_level);
    out << "--- Figure 5(" << sub[s] << "): tuned V cycles, "
        << to_string(dist) << ", N=" << size_of_level(settings.max_level)
        << ", " << profile.name << " ---\n";
    render_cycles(settings, engine, config, dist, /*fmg=*/false, out);
    ++s;
  }
  const char* sub2 = "cd";
  s = 0;
  for (auto dist :
       {InputDistribution::kUnbiased, InputDistribution::kBiased}) {
    const auto config =
        get_tuned_config(settings, engine, dist, settings.max_level);
    out << "--- Figure 5(" << sub2[s] << "): tuned full multigrid cycles, "
        << to_string(dist) << ", N=" << size_of_level(settings.max_level)
        << ", " << profile.name << " ---\n";
    render_cycles(settings, engine, config, dist, /*fmg=*/true, out);
    ++s;
  }
  std::cout << out.str();
  std::error_code ec;
  std::filesystem::create_directories(settings.out_dir, ec);
  write_text_file(settings.out_dir + "/fig05_cycle_shapes.txt", out.str());
  std::cout << "(text: " << settings.out_dir << "/fig05_cycle_shapes.txt)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
