// Ablation: the parallel/sequential cutoff (DESIGN.md §3, paper §3.2.2).
//
// PetaBricks tunes a parallel-sequential cutoff per machine; our machine
// profiles carry one.  This ablation sweeps the cutoff and times reference
// V-cycles at a fixed size, showing the U-shape that makes the knob worth
// tuning: too small and fork/join latency dominates the coarse grids, too
// large and the fine grids lose their parallelism.

#include <cmath>

#include "common/harness.h"
#include "grid/level.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(argc, argv, "ablation_cutoff",
                              "sequential-cutoff sensitivity of V cycles");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const int n = size_of_level(std::min(settings.max_level, 9));
  constexpr double kTarget = 1e9;

  TextTable table({"cutoff (cells)", "V-cycle solve to 10^9 (s)",
                   "vs best (ratio)"});
  std::vector<std::pair<std::int64_t, double>> results;
  double best = std::numeric_limits<double>::infinity();
  for (std::int64_t cutoff :
       {std::int64_t{0}, std::int64_t{1024}, std::int64_t{4096},
        std::int64_t{16384}, std::int64_t{65536}, std::int64_t{262144},
        std::int64_t{1} << 40}) {
    rt::MachineProfile profile = rt::harpertown_profile();
    profile.sequential_cutoff_cells = cutoff;
    Engine engine(engine_options(settings, profile));
    const auto inst = eval_instance(settings, engine, n,
                                    InputDistribution::kUnbiased, /*salt=*/21);
    const double t = run_reference_v(settings, engine, inst, kTarget);
    results.emplace_back(cutoff, t);
    if (std::isfinite(t)) best = std::min(best, t);
    progress("ablation_cutoff: cutoff=" + std::to_string(cutoff) + " done");
  }
  for (const auto& [cutoff, t] : results) {
    table.add_row({cutoff >= (std::int64_t{1} << 40)
                       ? std::string("serial (inf)")
                       : std::to_string(cutoff),
                   format_double(t), format_double(t / best, 3)});
  }
  emit_table(settings, "ablation_cutoff",
             "Ablation: parallel/sequential cutoff at N=" + std::to_string(n),
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
