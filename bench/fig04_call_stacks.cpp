// Reproduces Figure 4: the call stacks of the tuned MULTIGRID-V_4
// (accuracy 10^7) algorithm for unbiased and biased random inputs on the
// Intel-like profile.  Each line shows which accuracy variant is invoked
// at each recursion level and what it does there — the paper's point is
// that the tuned algorithm hops between accuracy variants down the stack.

#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/harness.h"
#include "grid/level.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(argc, argv, "fig04_call_stacks",
                              "Fig 4: tuned MULTIGRID-V_4 call stacks");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const auto profile = rt::harpertown_profile();
  Engine engine(engine_options(settings, profile));

  std::ostringstream out;
  for (auto dist :
       {InputDistribution::kUnbiased, InputDistribution::kBiased}) {
    const auto config =
        get_tuned_config(settings, engine, dist, settings.max_level);
    const int idx = config.accuracy_index(1e7);  // MULTIGRID-V_4
    out << "--- Figure 4 (" << to_string(dist) << "): MULTIGRID-V[10^7] at N="
        << size_of_level(settings.max_level) << " on " << profile.name
        << " ---\n"
        << tune::render_call_stack(config, settings.max_level, idx) << '\n';
  }
  std::cout << out.str();
  std::error_code ec;
  std::filesystem::create_directories(settings.out_dir, ec);
  write_text_file(settings.out_dir + "/fig04_call_stacks.txt", out.str());
  std::cout << "(text: " << settings.out_dir << "/fig04_call_stacks.txt)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
