// Reproduces Figure 10: relative performance of multigrid algorithms
// versus the reference V-cycle for unbiased uniform random data to an
// accuracy of 10^5, on the three machine profiles.  Expected shape:
// autotuned curves below the references everywhere, with the largest gaps
// at small sizes.

#include "common/fullmg_figure.h"

int main(int argc, char** argv) {
  auto maybe = pbmg::bench::parse_settings(
      argc, argv, "fig10_fullmg_unbiased_1e5",
      "Fig 10: relative time vs reference V, unbiased data, accuracy 10^5");
  if (!maybe) return 0;
  return pbmg::bench::run_fullmg_figure(
      *maybe, pbmg::InputDistribution::kUnbiased, 1e5, "fig10",
      "Figure 10: unbiased data, accuracy 10^5");
}
