// "Figure 22" (beyond the paper): fleet-scale serving.  Two experiments
// on one tuned variable-coefficient service:
//
//  A. Batched multi-RHS amortization — K right-hand sides solved through
//     SolveService::solve_batch vs K solo solves.  The fused kernels load
//     each packed coefficient row once per sweep and apply it to all K
//     iterates, so throughput should grow with K while every slot stays
//     bitwise identical to its solo solve (divergences are counted and
//     must be zero).
//
//  B. Session-cache pressure — a mixed scenario workload (sizes ×
//     accuracies × V/FMG) under a ServicePolicy byte budget deliberately
//     smaller than the workload's unevicted session demand.  Client
//     threads hammer the service while it evicts LRU sessions; the run
//     reports sustained throughput, latency percentiles, and the
//     eviction/admission counters (pbmg_session_evictions_total,
//     pbmg_session_bytes) proving resident bytes stayed bounded.
//
// Emits both tables plus machine-readable BENCH_*.json.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "engine/solve_service.h"
#include "grid/level.h"
#include "grid/packed_kernels.h"
#include "obs/metrics.h"
#include "support/timer.h"
#include "tune/config_cache.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig22_fleet_serving",
      "Fig 22: batched multi-RHS amortization and session-cache eviction "
      "under a fleet byte budget");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const auto dist = InputDistribution::kUnbiased;
  // Per-request latency must stay laptop-scale across the whole sweep;
  // level 8 is also where the tuned tables pick zebra line smoothers at
  // the fine levels, the regime the batched Thomas factor-reuse targets.
  const int top_level = std::min(settings.max_level, 8);
  // A variable-coefficient family so the multi-RHS fusion has real
  // coefficient streams to amortize (Poisson's constant-coefficient fast
  // path has nothing to re-load in the first place).
  const OperatorFamily family = OperatorFamily::kJumpCoefficient;

  // The batch arm's coefficient-stream amortization only exists on the
  // packed SoA layout (one stream load serves all K iterates); the default
  // profile would leave the engine on the legacy layout where solve_batch
  // saves nothing.  Widest supported lane width, exactly what the kernel
  // tuner would pick on this machine.
  EngineOptions eng_options = engine_options(settings, rt::MachineProfile{});
  eng_options.relax.kernels.layout = grid::StencilLayout::kPacked;
  eng_options.relax.kernels.simd_width = grid::packed_simd_width_supported();
  Engine engine(eng_options);
  track_engine("fig22", engine);
  const std::string cache_dir = engine.cache_dir().empty()
                                    ? tune::default_cache_dir()
                                    : engine.cache_dir();
  tune::TrainerOptions options = trainer_options(settings, dist, top_level);
  options.op_family = family;
  const tune::TunedConfig config =
      tune::load_or_train(options, engine, cache_dir);
  const int acc_index = config.accuracy_index(1e5);

  // ------------------------------------------------- A: batched solves --
  const int n = size_of_level(top_level);
  const auto inst = eval_instance(settings, engine, n, dist, /*salt=*/22);
  SolveService batch_service(engine, config);
  SolveRequest request;
  request.accuracy_index = acc_index;
  {
    // Warm the session + scratch outside every timed region — one solo
    // solve, then one widest batch so the multi walk's extra pool leases
    // (per-RHS residual grids, shared Thomas factor rows) exist before
    // any timed trial.
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    batch_service.solve(x, inst.problem.b, request);
    std::vector<Grid2D> warm;
    for (int k = 0; k < 8; ++k) {
      Grid2D w(n, 0.0);
      w.copy_from(inst.problem.x0);
      warm.push_back(std::move(w));
    }
    std::vector<Grid2D*> xs;
    for (auto& w : warm) xs.push_back(&w);
    batch_service.solve_batch(xs, inst.problem.b, request);
  }

  TextTable batch_table({"K", "solo (s)", "batch (s)", "throughput x",
                         "bit-divergent"});
  Json batch_rows = Json::array();
  std::int64_t total_divergent = 0;
  for (const int k_count : {1, 2, 4, 8}) {
    // Distinct initial guesses per slot (same shared b, the serving
    // shape solve_batch targets); solo goldens double as the bit check.
    std::vector<Grid2D> goldens;
    for (int k = 0; k < k_count; ++k) {
      Grid2D x(n, 0.0);
      x.copy_from(eval_instance(settings, engine, n, dist, 100 + k)
                      .problem.x0);
      goldens.push_back(std::move(x));
    }
    double solo_s = 0.0;
    double batch_s = 0.0;
    std::int64_t divergent = 0;
    for (int trial = 0; trial < std::max(1, settings.trials); ++trial) {
      std::vector<Grid2D> solo = goldens;
      const double t0 = now_seconds();
      for (auto& x : solo) batch_service.solve(x, inst.problem.b, request);
      const double solo_trial = now_seconds() - t0;

      std::vector<Grid2D> batch = goldens;
      std::vector<Grid2D*> xs;
      for (auto& x : batch) xs.push_back(&x);
      const double t1 = now_seconds();
      batch_service.solve_batch(xs, inst.problem.b, request);
      const double batch_trial = now_seconds() - t1;

      if (trial == 0) {
        solo_s = solo_trial;
        batch_s = batch_trial;
        for (int k = 0; k < k_count; ++k) {
          if (!bitwise_equal(solo[k], batch[k])) ++divergent;
        }
      } else {
        solo_s = std::min(solo_s, solo_trial);
        batch_s = std::min(batch_s, batch_trial);
      }
    }
    total_divergent += divergent;
    const double speedup = solo_s / batch_s;
    batch_table.add_row({std::to_string(k_count), format_double(solo_s),
                         format_double(batch_s), format_double(speedup, 3),
                         std::to_string(divergent)});
    Json row = Json::object();
    row.set("k", k_count);
    row.set("solo_s", solo_s);
    row.set("batch_s", batch_s);
    row.set("throughput_ratio", speedup);
    row.set("bit_divergent", divergent);
    batch_rows.push_back(std::move(row));
    progress("fig22: K=" + std::to_string(k_count) + " batch " +
             format_double(speedup, 3) + "x solo");
  }

  // ------------------------------------------- B: cache-pressure run --
  // Unevicted demand: what the mixed workload would keep resident with
  // no budget, measured by binding every size on a throwaway service.
  const int low_level = std::max(3, top_level - 2);
  std::size_t unevicted_bytes = 0;
  {
    SolveService probe(engine, config);
    for (int level = low_level; level <= top_level; ++level) {
      unevicted_bytes += probe.session(size_of_level(level))
                             ->footprint_bytes();
    }
    probe.trim();
  }
  ServicePolicy policy;
  policy.max_session_bytes = (unevicted_bytes * 3) / 5;  // force eviction
  SolveService service(engine, config, policy);

  struct Scenario {
    int n = 0;
    SolveRequest request;
  };
  std::vector<Scenario> scenarios;
  std::vector<tune::TrainingInstance> instances;
  for (int level = low_level; level <= top_level; ++level) {
    instances.push_back(
        eval_instance(settings, engine, size_of_level(level), dist, 22));
    for (const int acc : {0, config.accuracy_count() - 1}) {
      for (const bool fmg : {false, true}) {
        Scenario s;
        s.n = size_of_level(level);
        s.request.accuracy_index = acc;
        s.request.fmg = fmg;
        scenarios.push_back(s);
      }
    }
  }
  const int clients = 4;
  const int requests_per_client = std::max(12, 4 * settings.trials);
  obs::Histogram run_hist;
  std::atomic<std::size_t> peak_bytes{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop_sampler{false};
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int r = 0; r < requests_per_client; ++r) {
        const Scenario& s =
            scenarios[static_cast<std::size_t>(c + r) % scenarios.size()];
        const auto& inst_for = *std::find_if(
            instances.begin(), instances.end(),
            [&](const auto& i) { return i.problem.n() == s.n; });
        Grid2D x(s.n, 0.0);
        x.copy_from(inst_for.problem.x0);
        const SolveStats stats =
            service.solve(x, inst_for.problem.b, s.request);
        run_hist.record(stats.seconds);
      }
    });
  }
  // Resident-bytes watchdog: samples the gauge while the storm runs so
  // "bounded" is observed under pressure, not just at the quiet end.
  std::thread sampler([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!stop_sampler.load(std::memory_order_acquire)) {
      const std::size_t now = service.stats().session_bytes;
      std::size_t prev = peak_bytes.load(std::memory_order_relaxed);
      while (now > prev &&
             !peak_bytes.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::yield();
    }
  });
  const double t0 = now_seconds();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const double wall = now_seconds() - t0;
  stop_sampler.store(true, std::memory_order_release);
  sampler.join();

  const obs::HistogramSnapshot latency = run_hist.snapshot();
  const ServiceStats stats = service.stats();
  const double rps = static_cast<double>(latency.count) / wall;
  TextTable pressure_table({"metric", "value"});
  pressure_table.add_row({"requests", std::to_string(latency.count)});
  pressure_table.add_row({"wall (s)", format_double(wall)});
  pressure_table.add_row({"req/s", format_double(rps)});
  pressure_table.add_row({"p50 (s)", format_double(latency.percentile(50))});
  pressure_table.add_row({"p90 (s)", format_double(latency.percentile(90))});
  pressure_table.add_row({"p99 (s)", format_double(latency.percentile(99))});
  pressure_table.add_row(
      {"unevicted demand (B)", std::to_string(unevicted_bytes)});
  pressure_table.add_row(
      {"byte budget (B)", std::to_string(policy.max_session_bytes)});
  pressure_table.add_row(
      {"peak resident (B)", std::to_string(peak_bytes.load())});
  pressure_table.add_row({"evictions", std::to_string(stats.evictions)});

  Json doc = Json::object();
  doc.set("bench", "fig22_fleet_serving");
  doc.set("profile", engine.profile().name);
  doc.set("op_family", to_string(family));
  doc.set("n", n);
  doc.set("batch", std::move(batch_rows));
  doc.set("batch_bit_divergent_total", total_divergent);
  Json pressure = Json::object();
  pressure.set("clients", clients);
  pressure.set("requests", latency.count);
  pressure.set("wall_s", wall);
  pressure.set("requests_per_second", rps);
  pressure.set("latency_p50_s", latency.percentile(50));
  pressure.set("latency_p90_s", latency.percentile(90));
  pressure.set("latency_p99_s", latency.percentile(99));
  pressure.set("unevicted_demand_bytes",
               static_cast<std::int64_t>(unevicted_bytes));
  pressure.set("max_session_bytes",
               static_cast<std::int64_t>(policy.max_session_bytes));
  pressure.set("peak_session_bytes",
               static_cast<std::int64_t>(peak_bytes.load()));
  pressure.set("evictions", stats.evictions);
  pressure.set("failures", stats.failures);
  doc.set("pressure", std::move(pressure));
  // The service registry carries pbmg_session_evictions_total,
  // pbmg_session_bytes, pbmg_batch_size and the per-(n, acc) latency
  // histograms for downstream dashboards.
  doc.set("service_metrics", obs::to_json(service.metrics_snapshot()));
  emit_bench_json(settings, "fig22_fleet_serving", doc);

  emit_table(settings, "fig22_fleet_serving_batch",
             "Figure 22a: batched multi-RHS throughput vs solo (" +
                 to_string(family) + ", n=" + std::to_string(n) + ")",
             batch_table);
  emit_table(settings, "fig22_fleet_serving_pressure",
             "Figure 22b: mixed workload under session byte budget (" +
                 std::to_string(clients) + " clients)",
             pressure_table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
