// "Figure 16" (beyond the paper): default-profile autotuning versus
// search-then-train — the population search over runtime parameters
// (src/search/) followed by the paper's DP autotuner on the searched
// profile.  One binary reports both solve times side by side, plus the
// searched parameter values and the cache behaviour of the combined
// artifact (tuned tables + searched profile in one JSON document).

#include <algorithm>
#include <iostream>

#include "common/harness.h"
#include "engine/engine.h"
#include "grid/level.h"
#include "solvers/relax.h"
#include "support/table.h"
#include "support/timer.h"
#include "tune/config_cache.h"

int main(int argc, char** argv) {
  using namespace pbmg;
  const auto maybe_settings = bench::parse_settings(
      argc, argv, "fig16_profile_search",
      "autotuned solve times: default machine profile vs searched profile");
  if (!maybe_settings) return 0;
  const bench::Settings settings = *maybe_settings;

  // Search + training cost grows quickly with level; cap the tuned range
  // below the full benchmark ceiling so the default invocation stays
  // laptop-friendly (override with --max-n).
  const int max_level = std::min(settings.max_level, 7);
  const rt::MachineProfile base;  // the "default" profile
  Engine base_engine(bench::engine_options(settings, base));

  // Arm 1: the paper's flow — DP autotuning on the default profile.
  const tune::TunedConfig default_config = bench::get_tuned_config(
      settings, base_engine, InputDistribution::kUnbiased, max_level);

  // Arm 2: search-then-train through the disk cache.
  const tune::TrainerOptions trainer_options = bench::trainer_options(
      settings, InputDistribution::kUnbiased, max_level);
  search::ProfileSearchOptions search_options;
  search_options.base = base;
  search_options.level = std::min(max_level, 6);
  search_options.instances = settings.training_instances;
  search_options.seed = settings.train_seed;
  search_options.population.generations = 4;
  search_options.population.population = 4;
  if (settings.verbose) {
    search_options.log = [](const std::string& line) {
      std::cerr << "  " << line << '\n';
    };
  }

  bool from_cache = false;
  const double t0 = now_seconds();
  const tune::SearchTrainResult searched = tune::load_or_search_train(
      trainer_options, search_options, settings.cache_dir, &from_cache);
  bench::progress(
      "searched config " +
      std::string(from_cache ? "loaded from cache"
                             : "searched+trained in " +
                                   format_seconds(now_seconds() - t0)));

  // Round-trip check: a second acquisition must be a disk hit.
  bool second_from_cache = false;
  (void)tune::load_or_search_train(trainer_options, search_options,
                                   settings.cache_dir, &second_from_cache);
  bench::progress(std::string("searched-profile cache round trip: ") +
                  (second_from_cache ? "hit" : "MISS (unexpected)"));

  std::cout << "Searched runtime parameters (profile '"
            << searched.searched.profile.name << "'):\n"
            << "  threads " << base.threads << " -> "
            << searched.searched.profile.threads << ", grain_rows "
            << base.grain_rows << " -> " << searched.searched.profile.grain_rows
            << ", cutoff " << base.sequential_cutoff_cells << " -> "
            << searched.searched.profile.sequential_cutoff_cells
            << ", recurse_omega " << solvers::kRecurseOmega << " -> "
            << format_double(searched.searched.relax.recurse_omega, 4)
            << ", omega_scale 1 -> "
            << format_double(searched.searched.relax.omega_scale, 4) << "\n";

  // Timed comparison on held-out instances at the top accuracy.  The two
  // arms are two coexisting Engines — base parameters vs searched
  // parameters — rather than global profile/ω swaps.
  EngineOptions searched_options = bench::engine_options(
      settings, searched.searched.profile);
  searched_options.relax = searched.searched.relax;
  Engine searched_engine(searched_options);
  const int top = default_config.accuracy_count() - 1;
  const double target = default_config.accuracies().back();
  TextTable table({"N", "default profile", "searched profile", "speedup"});
  for (int level = std::max(4, max_level - 2); level <= max_level; ++level) {
    const int n = size_of_level(level);
    const auto inst = bench::eval_instance(settings, base_engine, n,
                                           InputDistribution::kUnbiased, 16);
    const double default_seconds = bench::run_tuned_v(
        settings, base_engine, default_config, inst, top);
    const double searched_seconds = bench::run_tuned_v(
        settings, searched_engine, searched.config, inst, top);
    table.add_row({std::to_string(n), format_seconds(default_seconds),
                   format_seconds(searched_seconds),
                   format_double(default_seconds / searched_seconds, 3)});
  }
  bench::emit_table(settings, "fig16_profile_search",
                    "Autotuned MULTIGRID-V to " + format_accuracy(target) +
                        ": default vs searched machine profile",
                    table);
  return second_from_cache ? 0 : 1;
}
