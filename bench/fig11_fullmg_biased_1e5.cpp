// Reproduces Figure 11: relative performance of multigrid algorithms
// versus the reference V-cycle for biased uniform random data to an
// accuracy of 10^5, on the three machine profiles.

#include "common/fullmg_figure.h"

int main(int argc, char** argv) {
  auto maybe = pbmg::bench::parse_settings(
      argc, argv, "fig11_fullmg_biased_1e5",
      "Fig 11: relative time vs reference V, biased data, accuracy 10^5");
  if (!maybe) return 0;
  return pbmg::bench::run_fullmg_figure(
      *maybe, pbmg::InputDistribution::kBiased, 1e5, "fig11",
      "Figure 11: biased data, accuracy 10^5");
}
