// Reproduces Figure 7: time to solve Poisson to accuracy 10^9 on biased
// uniform random data for the fixed-accuracy heuristics
// ("Strategy 10^9" and "Strategy 10^x/10^9") against the autotuned
// algorithm.  Expected shape: every heuristic is at best tied with the
// autotuner, and the best heuristic changes with problem size.

#include <cmath>
#include <vector>

#include "common/harness.h"
#include "grid/level.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig07_heuristics",
      "Fig 7: heuristic strategies vs autotuned, biased data, 10^9");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  constexpr double kTarget = 1e9;
  const auto profile = rt::harpertown_profile();
  const auto dist = InputDistribution::kBiased;

  // Heuristic j fixes sub-accuracy 10^(2j+1); j = 4 is "Strategy 10^9",
  // lower j are "Strategy 10^x/10^9" (paper Fig. 7 legend order).
  Engine engine(engine_options(settings, profile));
  std::vector<tune::TunedConfig> heuristics;
  for (int j = 0; j < 5; ++j) {
    heuristics.push_back(
        get_heuristic_config(settings, engine, dist, settings.max_level, j));
  }
  const auto autotuned =
      get_tuned_config(settings, engine, dist, settings.max_level);

  const int acc_index = autotuned.accuracy_index(kTarget);
  TextTable table({"N", "10^9 (s)", "10^7/10^9 (s)", "10^5/10^9 (s)",
                   "10^3/10^9 (s)", "10^1/10^9 (s)", "autotuned (s)"});
  for (int level = 6; level <= settings.max_level; ++level) {
    const int n = size_of_level(level);
    const auto inst = eval_instance(settings, engine, n, dist, /*salt=*/7);
    std::vector<std::string> row{std::to_string(n)};
    for (int j = 4; j >= 0; --j) {
      row.push_back(format_double(run_tuned_v(
          settings, engine, heuristics[static_cast<std::size_t>(j)], inst,
          acc_index)));
    }
    row.push_back(format_double(
        run_tuned_v(settings, engine, autotuned, inst, acc_index)));
    table.add_row(std::move(row));
    progress("fig07: N=" + std::to_string(n) + " done");
  }
  emit_table(settings, "fig07_heuristics",
             "Figure 7: heuristics vs autotuned, biased data, accuracy 10^9",
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
