// Reproduces Figure 13: as Figure 11 but to an accuracy of 10^9.

#include "common/fullmg_figure.h"

int main(int argc, char** argv) {
  auto maybe = pbmg::bench::parse_settings(
      argc, argv, "fig13_fullmg_biased_1e9",
      "Fig 13: relative time vs reference V, biased data, accuracy 10^9");
  if (!maybe) return 0;
  return pbmg::bench::run_fullmg_figure(
      *maybe, pbmg::InputDistribution::kBiased, 1e9, "fig13",
      "Figure 13: biased data, accuracy 10^9");
}
