// Reproduces Figure 9: parallel speedup of the autotuned Poisson solver as
// worker threads are added (1..8), at the largest benchmarked size, to
// accuracy 10^9 on unbiased data.  Expected shape: near-linear speedup at
// low thread counts, flattening as memory bandwidth saturates.

#include <cmath>

#include "common/harness.h"
#include "grid/level.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(argc, argv, "fig09_scalability",
                              "Fig 9: speedup vs worker threads (1-8)");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  constexpr double kTarget = 1e9;
  const auto base_profile = rt::harpertown_profile();
  Engine train_engine(engine_options(settings, base_profile));
  const auto config = get_tuned_config(settings, train_engine,
                                       InputDistribution::kUnbiased,
                                       settings.max_level);
  const int acc_index = config.accuracy_index(kTarget);
  const int n = size_of_level(settings.max_level);

  TextTable table({"threads", "time (s)", "speedup"});
  double t1 = std::nan("");
  for (int threads = 1; threads <= 8; ++threads) {
    rt::MachineProfile profile = base_profile;
    profile.threads = threads;
    // Each thread count is its own Engine; the tuned config carries over.
    Engine engine(engine_options(settings, profile));
    const auto inst = eval_instance(settings, engine, n,
                                    InputDistribution::kUnbiased, /*salt=*/9);
    // Repeat the solve a few times and keep the fastest run.
    Settings timing = settings;
    timing.trials = std::max(settings.trials, 3);
    const double t = run_tuned_v(timing, engine, config, inst, acc_index);
    if (threads == 1) t1 = t;
    table.add_row({std::to_string(threads), format_double(t),
                   format_double(t1 / t, 3)});
    progress("fig09: threads=" + std::to_string(threads) + " done");
  }
  emit_table(settings, "fig09_scalability",
             "Figure 9: autotuned solver speedup vs threads (N=" +
                 std::to_string(n) + ", accuracy 10^9)",
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
