// "Figure 19" (beyond the paper): the payoff of making the smoother a
// tuned choice dimension.  For each anisotropic operator family we train
// two DP configurations on identical options except the smoother
// candidate list — the full space (point red-black SOR plus the x/y/
// alternating zebra line variants, solvers/line_relax.h) versus the
// paper's point-only space — and race them to the same achieved accuracy
// (>= 10^5) on held-out instances.  At 32:1 the point-only tables limp
// along on mistuned point cycles; at 1000:1 point multigrid stalls
// outright (the reference point-smoothed V-cycle column documents it)
// and the point-only DP survives only by falling back to the O(N^4)
// direct solve, so the line-tuned tables win by orders of magnitude.
// The per-level smoother column shows what the autotuner *discovered*:
// line variants on the fine levels of every anisotropic family, chosen
// per level rather than hard-coded.

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/harness.h"
#include "engine/solve_session.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "solvers/line_relax.h"
#include "support/timer.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

constexpr double kTargetAccuracy = 1e5;
constexpr int kMaxPasses = 24;
constexpr int kEvalInstances = 3;
constexpr int kReferenceCycleCap = 100;

struct ArmResult {
  bool trained = false;         ///< the DP found a feasible table
  bool converged = false;       ///< every instance reached the target
  double median_seconds = std::nan("");
  double worst_achieved = 0.0;
  std::vector<std::vector<int>> rung_sequences;
  std::vector<double> samples;
};

int rung_for(const tune::TunedConfig& config, double needed) {
  const auto& ladder = config.accuracies();
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] >= needed) return static_cast<int>(i);
  }
  return static_cast<int>(ladder.size()) - 1;
}

/// Untimed probe with the same ladder-descent drive as fig18: both arms
/// pay for misses identically, so the comparison measures tuning, not
/// pass quantization.
bool probe_arm(Engine& engine, const SolveSession& session,
               const std::vector<tune::TrainingInstance>& instances,
               ArmResult& result) {
  result.worst_achieved = std::numeric_limits<double>::infinity();
  const int top_rung = session.config().accuracy_count() - 1;
  for (const auto& inst : instances) {
    Grid2D x(inst.problem.n(), 0.0);
    x.copy_from(inst.problem.x0);
    std::vector<int> rungs;
    double achieved = 1.0;
    double best = 1.0;
    int rung = rung_for(session.config(), kTargetAccuracy);
    while (static_cast<int>(rungs.size()) < kMaxPasses &&
           achieved < kTargetAccuracy) {
      session.solve_v(x, inst.problem.b, rung);
      rungs.push_back(rung);
      achieved = tune::accuracy_of(inst, x, engine.scheduler());
      if (achieved > best) {
        best = achieved;
        rung = rung_for(session.config(), kTargetAccuracy / best);
      } else {
        rung = std::min(rung + 1, top_rung);
      }
    }
    if (achieved < kTargetAccuracy) return false;
    result.rung_sequences.push_back(std::move(rungs));
    result.worst_achieved = std::min(result.worst_achieved, achieved);
  }
  return true;
}

void time_arm(const Settings& settings, const SolveSession& session,
              const std::vector<tune::TrainingInstance>& instances,
              ArmResult& result) {
  const int trials = std::max(settings.trials, 3);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (int t = 0; t < trials; ++t) {
      Grid2D x(instances[i].problem.n(), 0.0);
      x.copy_from(instances[i].problem.x0);
      const double t0 = now_seconds();
      for (const int rung : result.rung_sequences[i]) {
        session.solve_v(x, instances[i].problem.b, rung);
      }
      result.samples.push_back(now_seconds() - t0);
    }
  }
  if (!result.samples.empty()) {
    std::sort(result.samples.begin(), result.samples.end());
    result.median_seconds = result.samples[result.samples.size() / 2];
  }
}

/// The smoothers the tuned table selected on its top-accuracy RECURSE
/// cells, finest levels first — the "what did the tuner discover" column.
std::string discovered_smoothers(const tune::TunedConfig& config) {
  std::ostringstream oss;
  const int top = config.accuracy_count() - 1;
  for (int level = config.max_level(); level >= 2; --level) {
    const tune::VChoice& choice = config.v_entry(level, top).choice;
    oss << "L" << level << ":";
    switch (choice.kind) {
      case tune::VKind::kDirect: oss << "direct"; break;
      case tune::VKind::kIterSor: oss << "sor"; break;
      case tune::VKind::kRecurse:
        oss << solvers::to_string(choice.smoother);
        break;
    }
    if (level > 2) oss << " ";
  }
  return oss.str();
}

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig19_line_smoothers",
      "tuned-with-line-smoothers vs best point-only config at equal "
      "achieved accuracy on the anisotropic operator families");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const int level = settings.max_level;
  const int n = size_of_level(level);
  const std::string cache_dir = engine_options(settings,
                                               rt::MachineProfile{}).cache_dir;
  const std::string dir =
      cache_dir.empty() ? tune::default_cache_dir() : cache_dir;

  Engine engine(engine_options(settings, rt::MachineProfile{}));
  track_engine("fig19", engine);

  const auto train_arm = [&](OperatorFamily family, bool point_only,
                             tune::TunedConfig& out) {
    tune::TrainerOptions options =
        trainer_options(settings, InputDistribution::kUnbiased, level);
    options.op_family = family;
    options.train_fmg = false;
    if (point_only) options.smoothers = {solvers::RelaxKind::kSor};
    try {
      out = tune::load_or_train(options, engine, dir);
      return true;
    } catch (const Error&) {
      // No feasible candidate at some level — the point-only space can
      // genuinely fail on extreme anisotropy once the direct solver is
      // out of reach.  That *is* the result: report the arm as stalled.
      return false;
    }
  };

  const OperatorFamily families[] = {OperatorFamily::kAnisotropic,
                                     OperatorFamily::kAnisotropic1000,
                                     OperatorFamily::kAnisoRotated};

  Json rows = Json::array();
  TextTable table({"family", "point-only (s)", "with-lines (s)", "speedup",
                   "point ref-V @cap", "tuned smoothers (top rung)"});
  for (const OperatorFamily family : families) {
    progress("fig19: training point-only arm for '" + to_string(family) +
             "'");
    tune::TunedConfig point_config, line_config;
    ArmResult point_arm, line_arm;
    point_arm.trained = train_arm(family, /*point_only=*/true, point_config);
    progress("fig19: training line-smoother arm for '" + to_string(family) +
             "'");
    line_arm.trained = train_arm(family, /*point_only=*/false, line_config);

    const grid::StencilOp op = make_operator(n, family);
    std::vector<tune::TrainingInstance> instances;
    Rng rng(settings.eval_seed);
    for (int i = 0; i < kEvalInstances; ++i) {
      Rng sub = rng.split(0xF1'9u + static_cast<std::uint64_t>(i));
      instances.push_back(tune::make_training_instance(
          op, InputDistribution::kUnbiased, sub, engine.scheduler()));
    }

    if (point_arm.trained) {
      const SolveSession session(engine, point_config, op);
      point_arm.converged = probe_arm(engine, session, instances, point_arm);
      if (point_arm.converged) time_arm(settings, session, instances,
                                        point_arm);
    }
    if (line_arm.trained) {
      const SolveSession session(engine, line_config, op);
      line_arm.converged = probe_arm(engine, session, instances, line_arm);
      if (line_arm.converged) time_arm(settings, session, instances,
                                       line_arm);
    }

    // The classical point-smoothed reference V-cycle, driven to the same
    // target with a generous cap: the "where point-only stalls" column.
    const grid::StencilHierarchy ops(op);
    Grid2D x(n, 0.0);
    x.copy_from(instances[0].problem.x0);
    double ref_achieved = 1.0;
    const auto outcome = solvers::solve_reference_v(
        ops, x, instances[0].problem.b, solvers::VCycleOptions{},
        kReferenceCycleCap,
        [&](const Grid2D& it, int) {
          ref_achieved =
              tune::accuracy_of(instances[0], it, engine.scheduler());
          return ref_achieved >= kTargetAccuracy;
        },
        engine.scheduler(), engine.direct(), engine.scratch());
    const std::string ref_note =
        outcome.converged
            ? "reaches 10^5 in " + std::to_string(outcome.iterations) +
                  " cycles"
            : "stalls at " + format_accuracy(ref_achieved) + " after " +
                  std::to_string(outcome.iterations) + " cycles";

    const std::string point_cell =
        !point_arm.trained ? "untrainable"
        : !point_arm.converged
            ? "no contract"
            : format_double(point_arm.median_seconds);
    const double speedup = point_arm.converged && line_arm.converged
                               ? point_arm.median_seconds /
                                     line_arm.median_seconds
                               : std::numeric_limits<double>::infinity();
    table.add_row(
        {to_string(family), point_cell,
         line_arm.converged ? format_double(line_arm.median_seconds) : "DNF",
         std::isfinite(speedup) ? format_double(speedup, 3) : "inf",
         ref_note, discovered_smoothers(line_config)});

    Json row = Json::object();
    row.set("family", to_string(family));
    row.set("n", std::int64_t{n});
    row.set("target_accuracy", kTargetAccuracy);
    row.set("point_only_trained", point_arm.trained);
    row.set("point_only_converged", point_arm.converged);
    row.set("point_only_seconds",
            point_arm.converged ? point_arm.median_seconds : -1.0);
    row.set("with_lines_seconds",
            line_arm.converged ? line_arm.median_seconds : -1.0);
    // The evidence for the "equal achieved accuracy" framing: the lowest
    // accuracy either arm actually delivered over the instances.
    row.set("point_only_achieved",
            point_arm.converged ? point_arm.worst_achieved : -1.0);
    row.set("with_lines_achieved",
            line_arm.converged ? line_arm.worst_achieved : -1.0);
    row.set("speedup", std::isfinite(speedup) ? speedup : -1.0);
    row.set("reference_point_v_converged", outcome.converged);
    row.set("reference_point_v_achieved", ref_achieved);
    row.set("tuned_smoothers", discovered_smoothers(line_config));
    rows.push_back(std::move(row));
    progress("fig19: family '" + to_string(family) + "' done");
  }

  emit_table(settings, "fig19_line_smoothers",
             "smoother as a tuned choice: point-only vs line-enabled DP "
             "tables, N=" + std::to_string(n) +
                 ", equal achieved accuracy >= 10^5 (median over " +
                 std::to_string(kEvalInstances) + " instances)",
             table);
  Json doc = Json::object();
  doc.set("n", std::int64_t{n});
  doc.set("target_accuracy", kTargetAccuracy);
  doc.set("families", std::move(rows));
  emit_bench_json(settings, "fig19_line_smoothers_detail", doc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
