// Ablation: the smoother choice (paper §2.3).
//
// The paper restricted its search space to Red-Black SOR after finding it
// "performed better than weighted Jacobi on our particular training data
// for similar computation cost per iteration".  This ablation reproduces
// that comparison: time-to-accuracy-10^9 for V-cycles smoothing with
// SOR(1.15) versus weighted Jacobi(2/3), plus the cycle counts each needs.

#include <cmath>

#include "common/harness.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "solvers/multigrid.h"
#include "tune/accuracy.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

/// Probe + timed run for a given smoother, returning (seconds, cycles).
std::pair<double, int> time_smoother(const Settings& settings,
                                     Engine& engine,
                                     const tune::TrainingInstance& inst,
                                     solvers::RelaxKind relaxation,
                                     double target) {
  auto& sched = engine.scheduler();
  auto& direct = engine.direct();
  auto& pool = engine.scratch();
  solvers::VCycleOptions options;
  options.relaxation = relaxation;
  const int n = inst.problem.n();
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  int needed = -1;
  for (int it = 1; it <= 300; ++it) {
    solvers::vcycle(x, inst.problem.b, options, sched, direct, pool);
    if (tune::accuracy_of(inst, x, sched) >= target) {
      needed = it;
      break;
    }
  }
  if (needed < 0) return {std::nan(""), -1};
  const double seconds = time_min(
      settings, [&] { x.copy_from(inst.problem.x0); },
      [&] {
        for (int it = 0; it < needed; ++it) {
          solvers::vcycle(x, inst.problem.b, options, sched, direct, pool);
        }
      });
  return {seconds, needed};
}

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(argc, argv, "ablation_smoother",
                              "SOR vs weighted Jacobi smoothing (paper §2.3)");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  constexpr double kTarget = 1e9;
  Engine engine(engine_options(settings, rt::harpertown_profile()));

  TextTable table({"N", "SOR(1.15) (s)", "SOR cycles", "Jacobi(2/3) (s)",
                   "Jacobi cycles", "Jacobi/SOR"});
  for (int level = 5; level <= settings.max_level; ++level) {
    const int n = size_of_level(level);
    const auto inst = eval_instance(settings, engine, n,
                                    InputDistribution::kUnbiased, /*salt=*/22);
    const auto [t_sor, c_sor] = time_smoother(settings, engine, inst,
                                              solvers::RelaxKind::kSor,
                                              kTarget);
    const auto [t_jac, c_jac] = time_smoother(settings, engine, inst,
                                              solvers::RelaxKind::kJacobi,
                                              kTarget);
    table.add_row({std::to_string(n), format_double(t_sor),
                   std::to_string(c_sor), format_double(t_jac),
                   std::to_string(c_jac), format_double(t_jac / t_sor, 3)});
    progress("ablation_smoother: N=" + std::to_string(n) + " done");
  }
  emit_table(settings, "ablation_smoother",
             "Ablation: V-cycle smoother, SOR(1.15) vs weighted Jacobi(2/3), "
             "accuracy 10^9",
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
