// "Figure 18" (beyond the paper): the cross-tuning experiment of §4.3 /
// Figure 15, applied to *operator families* instead of machines.  The
// paper's central claim is that the best multigrid strategy is scenario-
// sensitive; here a scenario is the elliptic operator itself.  For each
// variable-coefficient family (smooth, high-contrast jump, axis-
// anisotropic) we solve that family's problems twice — once with the
// configuration tuned for constant-coefficient Poisson, once with the
// configuration retuned for the family — and report the median time to
// reach the same achieved accuracy.  Each arm is the *full* per-scenario
// pipeline (tune::load_or_search_train): a population search over runtime
// parameters raced on that arm's operator (the anisotropic family, for
// instance, wants a RECURSE ω far from the paper's Poisson-tuned 1.15),
// then the DP trained under the searched parameters, executed on an
// Engine built from them.  The Poisson row is the control: both arms
// share one artifact, so its speedup is ~1 by construction.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/harness.h"
#include "engine/solve_session.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/timer.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

constexpr double kTargetAccuracy = 1e7;
constexpr int kMaxPasses = 64;     // tuned-V applications before giving up
constexpr int kEvalInstances = 3;  // held-out problems per family
// Train on more instances than the bench default: a per-family table whose
// iteration counts were certified on a single instance can miss the target
// by a hair on held-out inputs, forcing a whole extra pass and turning the
// comparison into a quantization artifact instead of a tuning result.
constexpr int kMinTrainingInstances = 3;

struct ArmResult {
  double median_seconds = std::nan("");
  int passes = 0;                 ///< tuned-V invocations per solve (worst)
  double worst_achieved = 0.0;    ///< lowest achieved accuracy over instances
  std::vector<std::vector<int>> rung_sequences;  ///< per instance
  std::vector<double> samples;
};

/// Cheapest ladder rung whose tuned accuracy covers `needed`.
int rung_for(const tune::TunedConfig& config, double needed) {
  const auto& ladder = config.accuracies();
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] >= needed) return static_cast<int>(i);
  }
  return static_cast<int>(ladder.size()) - 1;
}

/// Untimed probe of one arm under the ladder-descent drive a production
/// caller would use: invoke the rung covering the full target once, then
/// top up with the cheapest rung covering the *remaining* gap until the
/// achieved accuracy reaches the target.  Both arms get the same drive,
/// so neither pays a whole-pass quantization cliff for barely missing its
/// certified accuracy on a held-out instance.  Records the rung sequence
/// for the timed replays.  Returns false when an instance never reaches
/// the target within kMaxPasses.
bool probe_arm(Engine& engine, const SolveSession& session,
               const std::vector<tune::TrainingInstance>& instances,
               ArmResult& result) {
  result.worst_achieved = std::numeric_limits<double>::infinity();
  const int top_rung = session.config().accuracy_count() - 1;
  for (const auto& inst : instances) {
    Grid2D x(inst.problem.n(), 0.0);
    x.copy_from(inst.problem.x0);
    std::vector<int> rungs;
    double achieved = 1.0;  // accuracy of the canonical start is 1
    double best = 1.0;
    int rung = rung_for(session.config(), kTargetAccuracy);
    while (static_cast<int>(rungs.size()) < kMaxPasses &&
           achieved < kTargetAccuracy) {
      session.solve_v(x, inst.problem.b, rung);
      rungs.push_back(rung);
      achieved = tune::accuracy_of(inst, x, engine.scheduler());
      if (achieved > best) {
        best = achieved;
        rung = rung_for(session.config(), kTargetAccuracy / best);
      } else {
        // Stalled or lost ground (a badly mistuned shape on a non-normal
        // operator can *grow* the error): escalate instead of retrying a
        // rung that just failed, DynamicSolver-style.
        rung = std::min(rung + 1, top_rung);
      }
    }
    if (achieved < kTargetAccuracy) return false;  // no accuracy contract
    result.passes =
        std::max(result.passes, static_cast<int>(rungs.size()));
    result.rung_sequences.push_back(std::move(rungs));
    result.worst_achieved = std::min(result.worst_achieved, achieved);
  }
  return true;
}

void time_arm_once(const SolveSession& session,
                   const tune::TrainingInstance& inst,
                   const std::vector<int>& rungs, ArmResult& result) {
  Grid2D x(inst.problem.n(), 0.0);
  x.copy_from(inst.problem.x0);
  const double t0 = now_seconds();
  for (const int rung : rungs) {
    session.solve_v(x, inst.problem.b, rung);
  }
  result.samples.push_back(now_seconds() - t0);
}

/// Probes both arms, then interleaves their timed trials (A, B, A, B, …)
/// so clock drift, turbo states and scheduler warm-up hit both equally —
/// the Poisson control row depends on it.
void run_arms(const Settings& settings, Engine& engine_a,
              const SolveSession& arm_a, Engine& engine_b,
              const SolveSession& arm_b,
              const std::vector<tune::TrainingInstance>& instances,
              ArmResult& a, ArmResult& b) {
  const bool a_ok = probe_arm(engine_a, arm_a, instances, a);
  const bool b_ok = probe_arm(engine_b, arm_b, instances, b);
  const int trials = std::max(settings.trials, 3);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (int t = 0; t < trials; ++t) {
      if (a_ok) time_arm_once(arm_a, instances[i], a.rung_sequences[i], a);
      if (b_ok) time_arm_once(arm_b, instances[i], b.rung_sequences[i], b);
    }
  }
  for (ArmResult* r : {&a, &b}) {
    if (r->samples.empty()) continue;
    std::sort(r->samples.begin(), r->samples.end());
    r->median_seconds = r->samples[r->samples.size() / 2];
  }
}

std::vector<tune::TrainingInstance> eval_instances(const Settings& settings,
                                                   Engine& engine,
                                                   OperatorFamily family,
                                                   int n) {
  const grid::StencilOp op = make_operator(n, family);
  std::vector<tune::TrainingInstance> instances;
  instances.reserve(kEvalInstances);
  Rng rng(settings.eval_seed);
  for (int i = 0; i < kEvalInstances; ++i) {
    Rng sub = rng.split(0xF16'18u + static_cast<std::uint64_t>(i));
    instances.push_back(tune::make_training_instance(
        op, InputDistribution::kUnbiased, sub, engine.scheduler()));
  }
  return instances;
}

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig18_operator_families",
      "per-operator retuning payoff: Poisson-tuned vs family-retuned "
      "configs at equal achieved accuracy");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const int level = settings.max_level;
  const int n = size_of_level(level);
  const std::string cache_dir = engine_options(settings,
                                               rt::MachineProfile{}).cache_dir;

  // One search-then-train artifact per scenario: the search races runtime
  // parameters on the family's own workload, the DP trains under the
  // winner, and the arm executes on an Engine built from both.
  const auto tune_scenario = [&](OperatorFamily family) {
    tune::TrainerOptions options = trainer_options(
        settings, InputDistribution::kUnbiased, level);
    options.training_instances =
        std::max(kMinTrainingInstances, settings.training_instances);
    options.op_family = family;
    search::ProfileSearchOptions search_options;
    search_options.base = rt::MachineProfile{};
    search_options.level = level;
    search_options.op_family = family;
    // Fixed machine, varying operator: search only the relaxation weights
    // so machine-knob timing noise cannot masquerade as a retuning effect.
    search_options.relax_only = true;
    search_options.target_accuracy = kTargetAccuracy;
    search_options.max_cycles = 200;  // slow-converging ω must score, not DNF
    search_options.seed = settings.train_seed;
    search_options.instances = 2;
    if (settings.verbose && options.log) search_options.log = options.log;
    return tune::load_or_search_train(
        options, search_options,
        cache_dir.empty() ? tune::default_cache_dir() : cache_dir);
  };

  progress("fig18: search+train for the Poisson baseline");
  const tune::SearchTrainResult poisson_tuned =
      tune_scenario(OperatorFamily::kPoisson);
  Engine poisson_engine(poisson_tuned.searched.profile,
                        poisson_tuned.searched.relax);

  Json rows = Json::array();
  TextTable table({"family", "poisson-tuned (s)", "retuned (s)", "speedup",
                   "passes P/R", "achieved P/R"});
  for (const OperatorFamily family : kAllOperatorFamilies) {
    progress("fig18: search+train for family '" + to_string(family) + "'");
    const tune::SearchTrainResult retuned = tune_scenario(family);
    Engine retuned_engine(retuned.searched.profile, retuned.searched.relax);

    const auto instances =
        eval_instances(settings, poisson_engine, family, n);
    const grid::StencilOp op = make_operator(n, family);
    const SolveSession poisson_arm(poisson_engine, poisson_tuned.config, op);
    const SolveSession retuned_arm(retuned_engine, retuned.config, op);
    ArmResult p, r;
    run_arms(settings, poisson_engine, poisson_arm, retuned_engine,
             retuned_arm, instances, p, r);
    const double speedup = p.median_seconds / r.median_seconds;

    table.add_row({to_string(family), format_double(p.median_seconds),
                   format_double(r.median_seconds),
                   format_double(speedup, 3),
                   std::to_string(p.passes) + "/" + std::to_string(r.passes),
                   format_double(p.worst_achieved, 3) + "/" +
                       format_double(r.worst_achieved, 3)});
    Json row = Json::object();
    row.set("family", to_string(family));
    row.set("n", std::int64_t{n});
    row.set("target_accuracy", kTargetAccuracy);
    row.set("poisson_tuned_seconds", p.median_seconds);
    row.set("retuned_seconds", r.median_seconds);
    row.set("speedup", speedup);
    row.set("poisson_tuned_passes", std::int64_t{p.passes});
    row.set("retuned_passes", std::int64_t{r.passes});
    row.set("poisson_tuned_achieved", p.worst_achieved);
    row.set("retuned_achieved", r.worst_achieved);
    rows.push_back(std::move(row));
    progress("fig18: family '" + to_string(family) + "' done");
  }

  const int target_exp =
      static_cast<int>(std::lround(std::log10(kTargetAccuracy)));
  emit_table(settings, "fig18_operator_families",
             "per-family retuning vs Poisson-tuned config, N=" +
                 std::to_string(n) + ", equal achieved accuracy >= 10^" +
                 std::to_string(target_exp) + " (median over " +
                 std::to_string(kEvalInstances) + " instances)",
             table);
  Json doc = Json::object();
  doc.set("n", std::int64_t{n});
  doc.set("target_accuracy", kTargetAccuracy);
  doc.set("families", std::move(rows));
  emit_bench_json(settings, "fig18_operator_families_detail", doc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
