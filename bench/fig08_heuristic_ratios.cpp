// Reproduces Figure 8: the Figure 7 data expressed as slowdown ratios
// versus the autotuned algorithm.  Expected shape: ratios >= ~1
// everywhere, and the identity of the best heuristic shifting from
// 10^1/10^9 toward higher-accuracy heuristics as N grows.

#include <cmath>
#include <vector>

#include "common/harness.h"
#include "grid/level.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig08_heuristic_ratios",
      "Fig 8: heuristic slowdown ratios vs autotuned, biased data, 10^9");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  constexpr double kTarget = 1e9;
  const auto profile = rt::harpertown_profile();
  const auto dist = InputDistribution::kBiased;

  Engine engine(engine_options(settings, profile));
  std::vector<tune::TunedConfig> heuristics;
  for (int j = 0; j < 5; ++j) {
    heuristics.push_back(
        get_heuristic_config(settings, engine, dist, settings.max_level, j));
  }
  const auto autotuned =
      get_tuned_config(settings, engine, dist, settings.max_level);

  const int acc_index = autotuned.accuracy_index(kTarget);
  TextTable table({"N", "10^9", "10^7/10^9", "10^5/10^9", "10^3/10^9",
                   "10^1/10^9", "autotuned"});
  for (int level = 6; level <= settings.max_level; ++level) {
    const int n = size_of_level(level);
    const auto inst = eval_instance(settings, engine, n, dist, /*salt=*/7);
    const double tuned_time =
        run_tuned_v(settings, engine, autotuned, inst, acc_index);
    std::vector<std::string> row{std::to_string(n)};
    for (int j = 4; j >= 0; --j) {
      const double t =
          run_tuned_v(settings, engine,
                      heuristics[static_cast<std::size_t>(j)], inst,
                      acc_index);
      row.push_back(format_double(t / tuned_time, 3));
    }
    row.push_back("1");
    table.add_row(std::move(row));
    progress("fig08: N=" + std::to_string(n) + " done");
  }
  emit_table(settings, "fig08_heuristic_ratios",
             "Figure 8: slowdown vs autotuned (ratio of times)", table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
