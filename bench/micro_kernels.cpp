// google-benchmark microbenchmarks for the computational kernels
// underlying every experiment: relaxation sweeps, residuals, transfer
// operators, norms, banded Cholesky, the spectral oracle, whole V-cycles,
// and runtime primitives.  These quantify the per-operation costs the
// autotuner trades off.

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "fft/fast_poisson.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/packed_kernels.h"
#include "grid/problem.h"
#include "linalg/band_matrix.h"
#include "linalg/poisson_assembly.h"
#include "obs/phase_profile.h"
#include "solvers/direct.h"
#include "solvers/line_relax.h"
#include "solvers/multigrid.h"
#include "solvers/relax.h"
#include "support/rng.h"

namespace {

using namespace pbmg;

/// One engine shared by every microbenchmark (default machine profile).
Engine& bench_engine() {
  static Engine instance;
  return instance;
}

PoissonProblem problem_for(int n) {
  Rng rng(8888 + static_cast<std::uint64_t>(n));
  return make_problem(n, InputDistribution::kUnbiased, rng);
}

void BM_SorSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  auto& sched = bench_engine().scheduler();
  const double omega = solvers::omega_opt(n);
  for (auto _ : state) {
    solvers::sor_sweep(x, problem.b, omega, sched);
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}
BENCHMARK(BM_SorSweep)->Arg(65)->Arg(257)->Arg(1025);

void BM_JacobiSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  Grid2D scratch(n, 0.0);
  auto& sched = bench_engine().scheduler();
  for (auto _ : state) {
    solvers::jacobi_sweep(x, problem.b, solvers::kJacobiOmega, scratch, sched);
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}
BENCHMARK(BM_JacobiSweep)->Arg(257)->Arg(1025);

void BM_Residual(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  Grid2D r(n, 0.0);
  auto& sched = bench_engine().scheduler();
  for (auto _ : state) {
    grid::residual(x, problem.b, r, sched);
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}
BENCHMARK(BM_Residual)->Arg(257)->Arg(1025);

void BM_Restrict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  Grid2D coarse(coarse_size(n), 0.0);
  auto& sched = bench_engine().scheduler();
  for (auto _ : state) {
    grid::restrict_full_weighting(problem.b, coarse, sched);
  }
}
BENCHMARK(BM_Restrict)->Arg(257)->Arg(1025);

void BM_Interpolate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Grid2D coarse(coarse_size(n), 1.0);
  Grid2D fine(n, 0.0);
  auto& sched = bench_engine().scheduler();
  for (auto _ : state) {
    grid::interpolate_add(coarse, fine, sched);
  }
}
BENCHMARK(BM_Interpolate)->Arg(257)->Arg(1025);

void BM_Norm2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  auto& sched = bench_engine().scheduler();
  double sink = 0.0;
  for (auto _ : state) {
    sink += grid::norm2_interior(problem.b, sched);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Norm2)->Arg(257)->Arg(1025);

void BM_BandCholeskyFactor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    linalg::BandMatrix a = linalg::assemble_poisson_band(n);
    linalg::band_cholesky_factor(a);
    benchmark::DoNotOptimize(a.band(0, 0));
  }
}
BENCHMARK(BM_BandCholeskyFactor)->Arg(33)->Arg(65)->Arg(129);

void BM_DirectSolveCachedFactor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  solvers::DirectSolver cached(n);
  Grid2D x = problem.x0;
  cached.solve(problem.b, x);  // warm the factor cache
  for (auto _ : state) {
    cached.solve(problem.b, x);
  }
}
BENCHMARK(BM_DirectSolveCachedFactor)->Arg(65)->Arg(129);

void BM_FastPoissonOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  fft::FastPoissonSolver solver(n);
  Grid2D out(n, 0.0);
  auto& sched = bench_engine().scheduler();
  for (auto _ : state) {
    solver.solve(problem.b, problem.x0, out, sched);
  }
}
BENCHMARK(BM_FastPoissonOracle)->Arg(257)->Arg(1025);

void BM_VCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  auto& sched = bench_engine().scheduler();
  auto& direct = bench_engine().direct();
  auto& pool = bench_engine().scratch();
  for (auto _ : state) {
    solvers::vcycle(x, problem.b, solvers::VCycleOptions{}, sched, direct,
                    pool);
  }
}
BENCHMARK(BM_VCycle)->Arg(257)->Arg(1025);

// Profiling-overhead pair: identical V-cycles with the obs::PhaseProfile
// hook disabled (null sink — the production default) versus enabled.  CI
// asserts the Off/On ratio stays within noise, i.e. that attaching the
// scoped-timer hooks to the solver costs nothing when no profile is
// requested.
void BM_VCycleProfilingOff(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  auto& sched = bench_engine().scheduler();
  auto& direct = bench_engine().direct();
  auto& pool = bench_engine().scratch();
  solvers::VCycleOptions options;  // options.profile == nullptr
  for (auto _ : state) {
    solvers::vcycle(x, problem.b, options, sched, direct, pool);
  }
}
BENCHMARK(BM_VCycleProfilingOff)->Arg(257);

void BM_VCycleProfilingOn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  auto& sched = bench_engine().scheduler();
  auto& direct = bench_engine().direct();
  auto& pool = bench_engine().scratch();
  obs::PhaseProfile profile;
  solvers::VCycleOptions options;
  options.profile = &profile;
  for (auto _ : state) {
    solvers::vcycle(x, problem.b, options, sched, direct, pool);
  }
  benchmark::DoNotOptimize(profile.total_seconds());
}
BENCHMARK(BM_VCycleProfilingOn)->Arg(257);

// ----------------------------------------------- packed-vs-legacy pairs --
// The ISSUE-7 tentpole's accounting: each pair runs the identical sweep
// on the identical 9-point operator (the fig20-class rotated-anisotropy
// discretisation, the family whose legacy sweeps stream nine separate
// coefficient grids), differing only in KernelPolicy.  Results are
// bitwise identical by contract (tests/packed_kernels_test.cpp), so the
// delta is pure memory traffic + SIMD.  The operator is packed before
// timing starts, like SolveSession's prewarm.

grid::StencilOp nine_point_op(int n) {
  return make_operator(n, OperatorFamily::kAnisoTheta30);
}

grid::KernelPolicy packed_policy() {
  grid::KernelPolicy policy;
  policy.layout = grid::StencilLayout::kPacked;
  policy.simd_width = grid::clamp_simd_width(4);
  return policy;
}

void stencil_residual_bench(benchmark::State& state,
                            const grid::KernelPolicy& policy) {
  const int n = static_cast<int>(state.range(0));
  const grid::StencilOp op = nine_point_op(n);
  op.packed();
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  Grid2D r(n, 0.0);
  auto& sched = bench_engine().scheduler();
  for (auto _ : state) {
    grid::residual_op(op, x, problem.b, r, sched, policy);
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}

void BM_StencilResidualLegacy(benchmark::State& state) {
  stencil_residual_bench(state, grid::KernelPolicy{});
}
BENCHMARK(BM_StencilResidualLegacy)->Arg(129)->Arg(513)->Arg(1025);

void BM_StencilResidualPacked(benchmark::State& state) {
  stencil_residual_bench(state, packed_policy());
}
BENCHMARK(BM_StencilResidualPacked)->Arg(129)->Arg(513)->Arg(1025);

void stencil_sor_bench(benchmark::State& state,
                       const grid::KernelPolicy& policy) {
  const int n = static_cast<int>(state.range(0));
  const grid::StencilOp op = nine_point_op(n);
  op.packed();
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  auto& sched = bench_engine().scheduler();
  for (auto _ : state) {
    solvers::sor_sweep(op, x, problem.b, solvers::kRecurseOmega, sched,
                       policy);
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}

void BM_StencilSorLegacy(benchmark::State& state) {
  stencil_sor_bench(state, grid::KernelPolicy{});
}
BENCHMARK(BM_StencilSorLegacy)->Arg(129)->Arg(513)->Arg(1025);

void BM_StencilSorPacked(benchmark::State& state) {
  stencil_sor_bench(state, packed_policy());
}
BENCHMARK(BM_StencilSorPacked)->Arg(129)->Arg(513)->Arg(1025);

void stencil_zebra_bench(benchmark::State& state,
                         const grid::KernelPolicy& policy) {
  const int n = static_cast<int>(state.range(0));
  const grid::StencilOp op = nine_point_op(n);
  op.packed();
  auto problem = problem_for(n);
  Grid2D x = problem.x0;
  auto& sched = bench_engine().scheduler();
  auto& pool = bench_engine().scratch();
  for (auto _ : state) {
    solvers::line_relax_sweep(op, x, problem.b,
                              solvers::RelaxKind::kLineZebraAlt, sched, pool,
                              policy);
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}

void BM_StencilZebraLegacy(benchmark::State& state) {
  stencil_zebra_bench(state, grid::KernelPolicy{});
}
BENCHMARK(BM_StencilZebraLegacy)->Arg(129)->Arg(513)->Arg(1025);

void BM_StencilZebraPacked(benchmark::State& state) {
  stencil_zebra_bench(state, packed_policy());
}
BENCHMARK(BM_StencilZebraPacked)->Arg(129)->Arg(513)->Arg(1025);

void BM_ParallelForOverhead(benchmark::State& state) {
  auto& sched = bench_engine().scheduler();
  std::atomic<std::int64_t> sink{0};
  for (auto _ : state) {
    sched.parallel_for(0, 1024, 16, [&](std::int64_t b, std::int64_t e) {
      sink.fetch_add(e - b, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ParallelForOverhead);

}  // namespace

BENCHMARK_MAIN();
