// "Figure 21" (beyond the paper): latency drift detection and background
// retune.  PAPERS.md ("Software Autotuning for Sustainable Performance
// Portability") argues a tuned config is only optimal for the machine
// state it was measured on; this bench closes the loop end to end:
//
//   1. tune on the healthy machine and measure the latency baseline,
//   2. serve solves through SolveService with the drift watcher armed,
//   3. inject a synthetic slowdown mid-run by shrinking the scheduler's
//      effective worker pool (rt::Scheduler::set_active_workers), the
//      moral equivalent of losing cores to a co-tenant,
//   4. watch the p90 climb until the watcher fires, a background re-train
//      runs *on the degraded machine*, and the new generation is swapped
//      in atomically,
//   5. verify the post-swap p90 recovers to within 1.2× of the fresh
//      (degraded-machine) baseline, with zero failed and zero
//      bit-divergent solves across the swap.
//
// Emits the per-phase latency table plus machine-readable BENCH_*.json.

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "engine/solve_service.h"
#include "grid/level.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "tune/baseline.h"
#include "tune/trainer.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

Json phase_json(const std::string& phase, const obs::HistogramSnapshot& h) {
  Json row = Json::object();
  row.set("phase", phase);
  row.set("solves", h.count);
  row.set("latency_p50_s", h.percentile(50.0));
  row.set("latency_p90_s", h.percentile(90.0));
  row.set("latency_mean_s", h.mean());
  row.set("latency_max_s", h.max);
  return row;
}

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig21_drift_retune",
      "Fig 21: latency drift triggers a background retune + config swap");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const auto dist = InputDistribution::kUnbiased;
  // One hammered request shape: large enough that the worker pool matters
  // (so the throttle actually slows solves), small enough for laptop scale.
  const int top_level = std::min(settings.max_level, 8);
  const int n = size_of_level(top_level);

  Engine engine(engine_options(settings, rt::harpertown_profile()));
  track_engine("fig21", engine);
  const int full_workers = engine.scheduler().thread_count();
  const auto config =
      get_tuned_config(settings, engine, dist, top_level, /*train_fmg=*/false);
  const int acc_index = config.accuracy_index(1e5);

  // Healthy baseline for the hammered level, measured exactly the way
  // tune::search_then_train persists it alongside the tables.
  tune::BaselineOptions baseline_options;
  baseline_options.min_level = top_level;
  baseline_options.max_level = top_level;
  // Enough samples that the baseline p90 represents the tail even when
  // the machine's noise is bimodal (e.g. timeslice preemption under a
  // co-tenant), not just the fast path.
  baseline_options.samples = std::max(25, settings.trials);
  const obs::LatencyBaseline healthy_baseline =
      tune::measure_latency_baseline(engine, config, baseline_options);
  const double baseline_p90 =
      healthy_baseline.find(n, acc_index)->percentile(90.0);

  SolveService service(engine, config);

  // Retune hook: re-train the DP tables under the machine state that
  // exists *when drift fired* (the throttled pool), then measure what
  // healthy looks like there.  A deployment that also wants fresh runtime
  // parameters plugs tune::search_then_train in here instead; the bench
  // keeps the population search out so its wall time stays laptop-scale.
  std::atomic<double> fresh_baseline_p90{0.0};
  obs::DriftPolicy policy;
  policy.p90_ratio = 1.3;  // the throttle injects a modest, real slowdown
  policy.ks_threshold = 0.25;
  policy.min_window_samples = 12;
  policy.sustained_windows = 2;
  service.enable_drift_watch(
      healthy_baseline, policy, [&]() -> SolveService::RetuneResult {
        progress("fig21: drift sustained, background re-train started");
        SolveService::RetuneResult result;
        tune::Trainer trainer(trainer_options(settings, dist, top_level,
                                              /*train_fmg=*/false),
                              engine);
        result.config = trainer.train();
        result.baseline = tune::measure_latency_baseline(
            engine, result.config, baseline_options);
        fresh_baseline_p90.store(
            result.baseline.find(n, acc_index)->percentile(90.0));
        return result;
      });

  const auto inst = eval_instance(settings, engine, n, dist, /*salt=*/21);
  SolveRequest request;
  request.accuracy_index = acc_index;
  request.residual.enabled = true;  // every sample provably converged
  // Per-generation golden bits: within one generation every solve of the
  // same instance must be bitwise identical, whichever side of the swap
  // (or worker throttle) it lands on.
  std::map<std::int64_t, Grid2D> golden;
  std::int64_t divergent = 0;
  std::int64_t unconverged = 0;
  const auto solve_once = [&](obs::Histogram& hist) {
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    const SolveStats stats = service.solve(x, inst.problem.b, request);
    hist.record(stats.seconds);
    if (!stats.converged) ++unconverged;
    auto [it, inserted] = golden.try_emplace(stats.generation, n, 0.0);
    if (inserted) {
      it->second.copy_from(x);
    } else if (!bitwise_equal(x, it->second)) {
      ++divergent;
    }
  };

  // Phase 1 — healthy serving: warm the session, then steady state.
  const int phase_solves = std::max(36, 3 * policy.min_window_samples);
  obs::Histogram healthy_hist;
  {
    obs::Histogram warm;
    solve_once(warm);
  }
  for (int i = 0; i < phase_solves; ++i) solve_once(healthy_hist);
  progress("fig21: healthy phase done, p90 " +
           format_double(healthy_hist.snapshot().percentile(90.0)) + " s");

  // Phase 2 — degrade the machine and serve until the watcher fires and
  // the background retune swaps a new generation in (bounded: a machine
  // whose degradation costs < policy.p90_ratio never drifts, and says so).
  // On a multi-core pool the injection shrinks the scheduler's effective
  // worker count; a single-worker machine has nothing to shrink, so there
  // the co-tenant is emulated directly with competing busy threads.
  const bool can_throttle = full_workers > 1;
  std::atomic<bool> load_stop{false};
  std::vector<std::thread> co_tenants;
  if (can_throttle) {
    engine.scheduler().set_active_workers(1);
    progress("fig21: throttled scheduler " + std::to_string(full_workers) +
             " -> 1 active workers");
  } else {
    for (int i = 0; i < 3; ++i) {
      co_tenants.emplace_back([&load_stop] {
        volatile double sink = 0.0;
        while (!load_stop.load(std::memory_order_relaxed)) {
          for (int k = 0; k < 4096; ++k) sink = sink + static_cast<double>(k);
        }
      });
    }
    progress("fig21: single-worker pool; injected 3 co-tenant busy threads");
  }
  obs::Histogram degraded_hist;
  const int max_degraded_solves = 40 * policy.min_window_samples;
  int degraded_solves = 0;
  while (service.generation() == 1 && degraded_solves < max_degraded_solves) {
    solve_once(degraded_hist);
    ++degraded_solves;
  }
  // Let the in-flight install land (solve() snapshots its generation, so
  // the loop above can exit a beat before the swap is visible).
  while (service.retune_in_progress()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const bool swapped = service.generation() == 2;
  progress(swapped ? "fig21: new generation installed"
                   : "fig21: watcher never fired (slowdown below threshold)");

  // Phase 3 — post-swap steady state, still on the degraded machine.
  obs::Histogram post_hist;
  if (swapped) {
    for (int i = 0; i < phase_solves; ++i) solve_once(post_hist);
  }
  engine.scheduler().set_active_workers(full_workers);
  load_stop.store(true, std::memory_order_relaxed);
  for (auto& tenant : co_tenants) tenant.join();

  const auto healthy = healthy_hist.snapshot();
  const auto degraded = degraded_hist.snapshot();
  const auto post = post_hist.snapshot();
  const auto stats = service.stats();
  const double fresh_p90 = fresh_baseline_p90.load();
  const double recovery =
      (swapped && fresh_p90 > 0.0) ? post.percentile(90.0) / fresh_p90 : 0.0;

  TextTable table({"phase", "solves", "p50 (s)", "p90 (s)",
                   "p90 / tuned baseline"});
  const auto add_phase = [&](const std::string& name,
                             const obs::HistogramSnapshot& h) {
    if (h.count == 0) return;
    table.add_row({name, std::to_string(h.count),
                   format_double(h.percentile(50.0)),
                   format_double(h.percentile(90.0)),
                   format_double(h.percentile(90.0) / baseline_p90, 3)});
  };
  add_phase("healthy", healthy);
  add_phase("degraded (pre-swap)", degraded);
  add_phase("post-retune", post);

  Json doc = Json::object();
  doc.set("bench", "fig21_drift_retune");
  doc.set("profile", engine.profile().name);
  doc.set("n", n);
  doc.set("accuracy_index", acc_index);
  doc.set("engine_threads", full_workers);
  doc.set("baseline_p90_s", baseline_p90);
  Json phases = Json::array();
  phases.push_back(phase_json("healthy", healthy));
  phases.push_back(phase_json("degraded", degraded));
  phases.push_back(phase_json("post_retune", post));
  doc.set("phases", std::move(phases));
  doc.set("watcher_fired", swapped);
  doc.set("generation", stats.generation);
  doc.set("drift_windows", stats.drift_windows);
  doc.set("drifted_windows", stats.drifted_windows);
  doc.set("retunes", stats.retunes);
  doc.set("fresh_baseline_p90_s", fresh_p90);
  // Acceptance: post-swap p90 within 1.2x of the fresh baseline measured
  // by the retune on the degraded machine.
  doc.set("post_swap_p90_over_fresh_baseline", recovery);
  doc.set("recovered_within_1_2x",
          swapped && recovery > 0.0 && recovery <= 1.2);
  doc.set("failed_solves", stats.failures);
  doc.set("unconverged_solves", unconverged);
  doc.set("bit_divergent_solves", divergent);
  doc.set("service_metrics", obs::to_json(service.metrics_snapshot()));
  emit_bench_json(settings, "fig21_drift_retune_phases", doc);

  emit_table(settings, "fig21_drift_retune",
             "Figure 21: drift -> background retune -> swap (" +
                 engine.profile().name + " engine, N=" + std::to_string(n) +
                 ", accuracy 10^5; " +
                 (full_workers > 1 ? "throttle " +
                                         std::to_string(full_workers) +
                                         " -> 1 workers"
                                   : std::string("3 co-tenant threads")) +
                 (swapped ? ", recovery p90/fresh-baseline " +
                                format_double(recovery, 3)
                          : ", watcher did not fire") +
                 ")",
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
