#include "common/harness.h"

#include <cmath>
#include <filesystem>
#include <iostream>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "grid/grid_ops.h"
#include "grid/level.h"
#include "solvers/relax.h"
#include "support/stats.h"
#include "support/timer.h"

namespace pbmg::bench {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

int level_for_max_n(std::int64_t max_n) {
  int level = 2;
  while (level < 14 && (std::int64_t{1} << (level + 1)) + 1 <= max_n) {
    ++level;
  }
  return level;
}

/// Figure-wide log of every timed trial since the last emit_table call;
/// summarized as median/p90 into BENCH_*.json.  Guarded for drivers that
/// time from multiple client threads (fig17).
std::mutex g_samples_mutex;
SampleStats g_samples;

void record_sample(double seconds) {
  // Resolved once: registry accessors return stable addresses.
  static obs::Histogram& trial_hist =
      metrics().histogram("pbmg_bench_trial_seconds");
  trial_hist.record(seconds);
  std::lock_guard<std::mutex> lock(g_samples_mutex);
  g_samples.add(seconds);
}

SampleStats drain_samples() {
  std::lock_guard<std::mutex> lock(g_samples_mutex);
  SampleStats out = g_samples;
  g_samples = SampleStats{};
  return out;
}

/// Engines registered by track_engine; their runtime stats become
/// labelled gauges at emission time.
std::mutex g_engines_mutex;
std::vector<std::pair<std::string, Engine*>> g_tracked_engines;

void publish_tracked_engines() {
  std::lock_guard<std::mutex> lock(g_engines_mutex);
  obs::MetricsRegistry& registry = metrics();
  for (const auto& [name, engine] : g_tracked_engines) {
    const std::string label = "{engine=\"" + name + "\"}";
    const auto pool = engine->scratch().stats();
    registry.gauge("pbmg_scheduler_threads" + label)
        .set(static_cast<double>(engine->profile().threads));
    registry.gauge("pbmg_scheduler_steals" + label)
        .set(static_cast<double>(engine->scheduler().steal_count()));
    registry.gauge("pbmg_scratch_hit_rate" + label).set(pool.hit_rate());
    registry.gauge("pbmg_scratch_pooled_bytes" + label)
        .set(static_cast<double>(pool.pooled_bytes));
    registry.gauge("pbmg_scratch_high_water_bytes" + label)
        .set(static_cast<double>(pool.high_water_bytes));
    registry.gauge("pbmg_scratch_trims" + label)
        .set(static_cast<double>(pool.trims));
  }
}

void write_bench_json(const Settings& settings, const std::string& name,
                      Json doc) {
  publish_tracked_engines();
  doc.set("metrics", obs::to_json(metrics().snapshot()));
  std::error_code ec;
  std::filesystem::create_directories(settings.out_dir, ec);
  const auto path =
      std::filesystem::path(settings.out_dir) / ("BENCH_" + name + ".json");
  try {
    write_text_file(path.string(), doc.dump(2) + "\n");
    std::cout << "(json: " << path.string() << ")\n";
  } catch (const Error& e) {
    std::cerr << "warning: could not write " << path << ": " << e.what()
              << '\n';
  }
}

}  // namespace

std::optional<Settings> parse_settings(int argc, const char* const* argv,
                                       const std::string& name,
                                       const std::string& description) {
  ArgParser parser(name, description);
  parser.add_int("max-n", env_int("PBMG_MAX_N", 513),
                 "largest grid side (rounded down to 2^k+1)");
  parser.add_int("trials", env_int("PBMG_TRIALS", 3),
                 "timed repetitions per data point");
  parser.add_int("instances", 2, "training instances per level");
  parser.add_int("train-seed", 20091114, "training RNG seed");
  parser.add_int("eval-seed", 555, "held-out evaluation RNG seed");
  parser.add_string("cache-dir", tune::default_cache_dir(),
                    "tuned-config cache directory");
  parser.add_string("out-dir", env_string("PBMG_OUT_DIR", "bench_results"),
                    "directory for CSV output");
  parser.add_flag("verbose", "print autotuner progress");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return std::nullopt;
  }
  Settings settings;
  settings.max_level = level_for_max_n(parser.get_int("max-n"));
  settings.trials = std::max<int>(1, static_cast<int>(parser.get_int("trials")));
  settings.training_instances =
      std::max<int>(1, static_cast<int>(parser.get_int("instances")));
  settings.train_seed =
      static_cast<std::uint64_t>(parser.get_int("train-seed"));
  settings.eval_seed = static_cast<std::uint64_t>(parser.get_int("eval-seed"));
  settings.cache_dir = parser.get_string("cache-dir");
  settings.out_dir = parser.get_string("out-dir");
  settings.verbose = parser.get_flag("verbose");
  return settings;
}

EngineOptions engine_options(const Settings& settings,
                             const rt::MachineProfile& profile) {
  EngineOptions options;
  options.profile = profile;
  options.cache_dir = settings.cache_dir;
  return options;
}

tune::TrainerOptions trainer_options(const Settings& settings,
                                     InputDistribution dist, int max_level,
                                     bool train_fmg) {
  tune::TrainerOptions options;
  options.max_level = max_level;
  options.distribution = dist;
  options.seed = settings.train_seed;
  options.training_instances = settings.training_instances;
  options.train_fmg = train_fmg;
  if (settings.verbose) {
    options.log = [](const std::string& line) {
      std::cerr << "  [tune] " << line << '\n';
    };
  }
  return options;
}

tune::TunedConfig get_tuned_config(const Settings& settings, Engine& engine,
                                   InputDistribution dist, int max_level,
                                   bool train_fmg) {
  const auto options = trainer_options(settings, dist, max_level, train_fmg);
  bool from_cache = false;
  const double t0 = now_seconds();
  auto config = engine.tuned_config(options, -1, &from_cache);
  progress("config[" + engine.profile().name + "," + to_string(dist) + ",L" +
           std::to_string(max_level) + "] " +
           (from_cache ? "loaded from cache"
                       : "trained in " + format_seconds(now_seconds() - t0)));
  return config;
}

tune::TunedConfig get_heuristic_config(const Settings& settings,
                                       Engine& engine, InputDistribution dist,
                                       int max_level, int sub_index) {
  auto options = trainer_options(settings, dist, max_level, false);
  bool from_cache = false;
  const double t0 = now_seconds();
  auto config = engine.tuned_config(options, sub_index, &from_cache);
  progress("heuristic" + std::to_string(sub_index) + "[" +
           engine.profile().name + "," + to_string(dist) + "] " +
           (from_cache ? "loaded from cache"
                       : "trained in " + format_seconds(now_seconds() - t0)));
  return config;
}

tune::TrainingInstance eval_instance(const Settings& settings, Engine& engine,
                                     int n, InputDistribution dist,
                                     std::uint64_t salt) {
  Rng rng(settings.eval_seed);
  Rng sub = rng.split(0xE7A1u + salt * 977 + static_cast<std::uint64_t>(n));
  return tune::make_training_instance(n, dist, sub, engine.scheduler());
}

double time_min(const Settings& settings, const std::function<void()>& reset,
                const std::function<void()>& solve) {
  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < settings.trials; ++t) {
    reset();
    const double t0 = now_seconds();
    solve();
    const double seconds = now_seconds() - t0;
    record_sample(seconds);
    best = std::min(best, seconds);
  }
  return best;
}

double run_direct(const Settings& settings, Engine& engine,
                  const tune::TrainingInstance& inst) {
  const int n = inst.problem.n();
  Grid2D x(n, 0.0);
  return time_min(
      settings, [&] { x.copy_from(inst.problem.x0); },
      [&] { engine.direct().solve(inst.problem.b, x); });
}

namespace {

/// Probe + timed-replay pattern: find the iteration count that reaches the
/// target (oracle checks untimed), then time that many iterations.
///
/// The timed replay of a *reference* algorithm additionally performs a
/// residual-norm convergence check every `check_period` iterations: a real
/// iterate-until-converged solver has no oracle and must pay for its
/// stopping criterion, whereas a tuned algorithm runs its fixed trained
/// shape open loop (that asymmetry is exactly the benefit the paper's
/// accuracy-aware tuning buys).  Pass check_period = 0 to omit the check.
template <typename Step>
double probe_then_time(const Settings& settings, Engine& engine,
                       const tune::TrainingInstance& inst,
                       double target_accuracy, int max_iterations,
                       int check_period, const Step& step) {
  rt::Scheduler& sched = engine.scheduler();
  const int n = inst.problem.n();
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  int needed = -1;
  for (int it = 1; it <= max_iterations; ++it) {
    step(x, inst.problem.b);
    if (tune::accuracy_of(inst, x, sched) >= target_accuracy) {
      needed = it;
      break;
    }
  }
  if (needed < 0) return kNaN;
  Grid2D check_scratch(n, 0.0);
  double norm_sink = 0.0;
  return time_min(
      settings, [&] { x.copy_from(inst.problem.x0); },
      [&] {
        for (int it = 1; it <= needed; ++it) {
          step(x, inst.problem.b);
          if (check_period > 0 && it % check_period == 0) {
            grid::residual(x, inst.problem.b, check_scratch, sched);
            norm_sink += grid::norm2_interior(check_scratch, sched);
          }
        }
      });
}

}  // namespace

double run_sor(const Settings& settings, Engine& engine,
               const tune::TrainingInstance& inst, double target_accuracy,
               int max_sweeps) {
  const double omega = solvers::omega_opt(inst.problem.n());
  rt::Scheduler& sched = engine.scheduler();
  // A production SOR loop checks convergence periodically, not per sweep.
  return probe_then_time(settings, engine, inst, target_accuracy, max_sweeps,
                         /*check_period=*/8,
                         [&](Grid2D& x, const Grid2D& b) {
                           solvers::sor_sweep(x, b, omega, sched);
                         });
}

double run_reference_v(const Settings& settings, Engine& engine,
                       const tune::TrainingInstance& inst,
                       double target_accuracy, int max_cycles) {
  return probe_then_time(
      settings, engine, inst, target_accuracy, max_cycles, /*check_period=*/1,
      [&](Grid2D& x, const Grid2D& b) {
        solvers::vcycle(x, b, solvers::VCycleOptions{}, engine.scheduler(),
                        engine.direct(), engine.scratch());
      });
}

double run_reference_fmg(const Settings& settings, Engine& engine,
                         const tune::TrainingInstance& inst,
                         double target_accuracy, int max_cycles) {
  rt::Scheduler& sched = engine.scheduler();
  solvers::DirectSolver& direct = engine.direct();
  grid::ScratchPool& pool = engine.scratch();
  const int n = inst.problem.n();
  // Probe: the FMG ramp is iteration 1, then V-cycles polish.
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  solvers::full_multigrid(x, inst.problem.b, solvers::VCycleOptions{}, sched,
                          direct, pool);
  int v_cycles = -1;
  if (tune::accuracy_of(inst, x, sched) >= target_accuracy) {
    v_cycles = 0;
  } else {
    for (int it = 1; it <= max_cycles; ++it) {
      solvers::vcycle(x, inst.problem.b, solvers::VCycleOptions{}, sched,
                      direct, pool);
      if (tune::accuracy_of(inst, x, sched) >= target_accuracy) {
        v_cycles = it;
        break;
      }
    }
  }
  if (v_cycles < 0) return kNaN;
  Grid2D check_scratch(n, 0.0);
  double norm_sink = 0.0;
  return time_min(
      settings, [&] { x.copy_from(inst.problem.x0); },
      [&] {
        solvers::full_multigrid(x, inst.problem.b, solvers::VCycleOptions{},
                                sched, direct, pool);
        grid::residual(x, inst.problem.b, check_scratch, sched);
        norm_sink += grid::norm2_interior(check_scratch, sched);
        for (int it = 0; it < v_cycles; ++it) {
          solvers::vcycle(x, inst.problem.b, solvers::VCycleOptions{}, sched,
                          direct, pool);
          grid::residual(x, inst.problem.b, check_scratch, sched);
          norm_sink += grid::norm2_interior(check_scratch, sched);
        }
      });
}

namespace {

double run_tuned_impl(const Settings& settings, Engine& engine,
                      const tune::TunedConfig& config,
                      const tune::TrainingInstance& inst, int accuracy_index,
                      bool fmg) {
  rt::Scheduler& sched = engine.scheduler();
  tune::TunedExecutor executor(config, sched, engine.direct(),
                               engine.scratch(), nullptr, engine.relax());
  const int n = inst.problem.n();
  Grid2D x(n, 0.0);
  const double seconds = time_min(
      settings, [&] { x.copy_from(inst.problem.x0); },
      [&] {
        if (fmg) {
          executor.run_fmg(x, inst.problem.b, accuracy_index);
        } else {
          executor.run_v(x, inst.problem.b, accuracy_index);
        }
      });
  // Contract check: a tuned run that misses its accuracy target by an
  // order of magnitude indicates a stale/broken config; report NaN so the
  // table makes the failure visible instead of rewarding it.
  const double target =
      config.accuracies()[static_cast<std::size_t>(accuracy_index)];
  if (tune::accuracy_of(inst, x, sched) < 0.1 * target) return kNaN;
  return seconds;
}

}  // namespace

double run_tuned_v(const Settings& settings, Engine& engine,
                   const tune::TunedConfig& config,
                   const tune::TrainingInstance& inst, int accuracy_index) {
  return run_tuned_impl(settings, engine, config, inst, accuracy_index, false);
}

double run_tuned_fmg(const Settings& settings, Engine& engine,
                     const tune::TunedConfig& config,
                     const tune::TrainingInstance& inst, int accuracy_index) {
  return run_tuned_impl(settings, engine, config, inst, accuracy_index, true);
}

void emit_table(const Settings& settings, const std::string& name,
                const std::string& title, const TextTable& table) {
  std::cout << "\n== " << title << " ==\n" << table.render();
  std::error_code ec;
  std::filesystem::create_directories(settings.out_dir, ec);
  const auto path = std::filesystem::path(settings.out_dir) / (name + ".csv");
  try {
    write_text_file(path.string(), table.to_csv());
    std::cout << "(csv: " << path.string() << ")\n";
  } catch (const Error& e) {
    std::cerr << "warning: could not write " << path << ": " << e.what()
              << '\n';
  }

  Json doc = Json::object();
  doc.set("bench", name);
  doc.set("title", title);
  Json columns = Json::array();
  for (const auto& header : table.headers()) columns.push_back(Json(header));
  doc.set("columns", std::move(columns));
  Json rows = Json::array();
  for (const auto& row : table.rows()) {
    Json cells = Json::array();
    for (const auto& cell : row) cells.push_back(Json(cell));
    rows.push_back(std::move(cells));
  }
  doc.set("rows", std::move(rows));
  const SampleStats samples = drain_samples();
  Json trial = Json::object();
  trial.set("count", static_cast<std::int64_t>(samples.count()));
  if (samples.count() > 0) {
    trial.set("median_s", samples.median());
    trial.set("p90_s", samples.percentile(90.0));
    trial.set("min_s", samples.min());
    trial.set("max_s", samples.max());
  }
  doc.set("trial_samples", std::move(trial));
  write_bench_json(settings, name, doc);
}

void emit_bench_json(const Settings& settings, const std::string& name,
                     const Json& doc) {
  write_bench_json(settings, name, doc);
}

obs::MetricsRegistry& metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

void track_engine(const std::string& name, Engine& engine) {
  std::lock_guard<std::mutex> lock(g_engines_mutex);
  for (auto& [existing, ptr] : g_tracked_engines) {
    if (existing == name) {
      ptr = &engine;
      return;
    }
  }
  g_tracked_engines.emplace_back(name, &engine);
}

void progress(const std::string& line) { std::cerr << line << '\n'; }

std::vector<int> bench_sizes(const Settings& settings, int min_level) {
  std::vector<int> sizes;
  for (int level = min_level; level <= settings.max_level; ++level) {
    sizes.push_back(size_of_level(level));
  }
  return sizes;
}

}  // namespace pbmg::bench
