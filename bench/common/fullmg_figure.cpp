#include "common/fullmg_figure.h"

#include <cmath>

#include "grid/level.h"

namespace pbmg::bench {

int run_fullmg_figure(const Settings& settings, InputDistribution dist,
                      double target_accuracy, const std::string& name,
                      const std::string& title) {
  const rt::MachineProfile profiles[] = {rt::harpertown_profile(),
                                         rt::barcelona_profile(),
                                         rt::niagara_profile()};
  const char* subfig[] = {"a", "b", "c"};
  for (int p = 0; p < 3; ++p) {
    const auto& profile = profiles[p];
    Engine engine(engine_options(settings, profile));
    const auto config =
        get_tuned_config(settings, engine, dist, settings.max_level);
    const int acc_index = config.accuracy_index(target_accuracy);
    TextTable table({"N", "ref V (s)", "ref FMG (rel)", "tuned V (rel)",
                     "tuned FMG (rel)"});
    for (int level = 4; level <= settings.max_level; ++level) {
      const int n = size_of_level(level);
      const auto inst =
          eval_instance(settings, engine, n, dist, /*salt=*/10 + p);
      const double ref_v =
          run_reference_v(settings, engine, inst, target_accuracy);
      const double ref_fmg =
          run_reference_fmg(settings, engine, inst, target_accuracy);
      const double tuned_v =
          run_tuned_v(settings, engine, config, inst, acc_index);
      const double tuned_fmg =
          run_tuned_fmg(settings, engine, config, inst, acc_index);
      table.add_row({std::to_string(n), format_double(ref_v),
                     format_double(ref_fmg / ref_v),
                     format_double(tuned_v / ref_v),
                     format_double(tuned_fmg / ref_v)});
      progress(name + subfig[p] + ": N=" + std::to_string(n) + " done");
    }
    emit_table(settings, name + subfig[p],
               title + " — (" + subfig[p] + ") " + profile.name +
                   " profile (relative to reference V)",
               table);
  }
  return 0;
}

}  // namespace pbmg::bench
