#pragma once

#include <string>

#include "common/harness.h"

/// \file fullmg_figure.h
/// Shared driver for Figures 10-13: relative performance of Reference-V,
/// Reference-FMG, Autotuned-V and Autotuned-FMG against the reference
/// V-cycle algorithm, across problem sizes, on the three machine profiles.
/// The four figures differ only in input distribution and accuracy target.

namespace pbmg::bench {

/// Runs one full figure (three sub-tables, one per machine profile) and
/// emits "<name>a/b/c" tables.  Returns 0 (main-compatible).
int run_fullmg_figure(const Settings& settings, InputDistribution dist,
                      double target_accuracy, const std::string& name,
                      const std::string& title);

}  // namespace pbmg::bench
