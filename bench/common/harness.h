#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "grid/problem.h"
#include "obs/metrics.h"
#include "solvers/direct.h"
#include "solvers/multigrid.h"
#include "support/argparse.h"
#include "support/json.h"
#include "support/table.h"
#include "tune/accuracy.h"
#include "tune/config_cache.h"
#include "tune/executor.h"

/// \file harness.h
/// Shared infrastructure for the paper-reproduction benchmark binaries
/// (one binary per table/figure; see DESIGN.md §5).
///
/// Responsibilities: benchmark-wide settings (sizes, trials, cache
/// directory), tuned-config acquisition through the disk cache, evaluation
/// instances with exact solutions, timed solve drivers for every algorithm
/// the paper compares (tuned V/FMG, reference V/FMG, iterated SOR, direct),
/// and table emission (stdout + CSV + machine-readable BENCH_*.json).
///
/// Every driver runs against an explicit pbmg::Engine: a figure that
/// compares machine profiles constructs one Engine per profile (a profile
/// under test is a new Engine, never a process-global swap).

namespace pbmg::bench {

/// Settings shared by all figure binaries.  Populated from command-line
/// flags with environment fallbacks (PBMG_MAX_N, PBMG_CACHE_DIR,
/// PBMG_TRIALS) so `for b in build/bench/*; do $b; done` runs at laptop
/// scale out of the box.
struct Settings {
  int max_level = 9;          ///< largest tuned/benchmarked level (N = 2^L+1)
  int trials = 1;             ///< timed repetitions per data point (min taken)
  std::uint64_t train_seed = 20091114;  ///< training-set seed
  std::uint64_t eval_seed = 555;        ///< held-out evaluation seed
  int training_instances = 2;
  std::string cache_dir;      ///< tuned-config cache directory
  std::string out_dir = ".";  ///< where CSV/JSON outputs are written
  bool verbose = false;       ///< print tuner progress lines
};

/// Parses standard flags (--max-n, --trials, --cache-dir, --out-dir,
/// --verbose) plus help.  Returns nullopt when --help was requested (the
/// help text has then been printed).
std::optional<Settings> parse_settings(int argc, const char* const* argv,
                                       const std::string& name,
                                       const std::string& description);

/// Builds an Engine for `profile` honouring the settings' cache dir.
EngineOptions engine_options(const Settings& settings,
                             const rt::MachineProfile& profile);

/// Builds TrainerOptions matching `settings` for the given distribution and
/// level ceiling.
tune::TrainerOptions trainer_options(const Settings& settings,
                                     InputDistribution dist, int max_level,
                                     bool train_fmg = true);

/// Fetches (training on miss) the autotuned config for `engine`'s profile.
tune::TunedConfig get_tuned_config(const Settings& settings, Engine& engine,
                                   InputDistribution dist, int max_level,
                                   bool train_fmg = true);

/// Fetches (training on miss) a Figure-7 heuristic config
/// ("Strategy 10^x/10^9" with x = accuracies[sub_index]).
tune::TunedConfig get_heuristic_config(const Settings& settings,
                                       Engine& engine, InputDistribution dist,
                                       int max_level, int sub_index);

/// Held-out evaluation instance (problem + oracle solution).
tune::TrainingInstance eval_instance(const Settings& settings, Engine& engine,
                                     int n, InputDistribution dist,
                                     std::uint64_t salt);

/// Times `solve` (which must leave its result in place) over
/// settings.trials runs and returns the minimum seconds.  `reset` restores
/// the initial state before each run and is excluded from the timing.
/// Every trial is also recorded into the figure-wide sample log that
/// emit_table summarizes into BENCH_*.json.
double time_min(const Settings& settings, const std::function<void()>& reset,
                const std::function<void()>& solve);

// ---------------------------------------------------------------------
// Timed solve drivers.  Each returns seconds to reach `target_accuracy`
// on the instance (or NaN when the algorithm cannot reach it within its
// iteration cap).  Iteration counts are determined in an untimed probe
// phase so oracle-based convergence checks never pollute the timings.
// ---------------------------------------------------------------------

/// Direct banded-Cholesky solve (factor + solve, the paper's DPBSV).
double run_direct(const Settings& settings, Engine& engine,
                  const tune::TrainingInstance& inst);

/// Iterated Red-Black SOR with ω_opt until the target accuracy.
double run_sor(const Settings& settings, Engine& engine,
               const tune::TrainingInstance& inst, double target_accuracy,
               int max_sweeps);

/// Iterated MULTIGRID-V-SIMPLE (the paper's "Multigrid" baseline, which is
/// also its reference V-cycle algorithm).
double run_reference_v(const Settings& settings, Engine& engine,
                       const tune::TrainingInstance& inst,
                       double target_accuracy, int max_cycles = 200);

/// Reference full multigrid: one FMG ramp then V-cycles until the target.
double run_reference_fmg(const Settings& settings, Engine& engine,
                         const tune::TrainingInstance& inst,
                         double target_accuracy, int max_cycles = 200);

/// Tuned MULTIGRID-V_i / FULL-MULTIGRID_i (fixed tuned shape).  Also
/// verifies the accuracy contract; returns NaN if the tuned run misses the
/// target by more than 10× (which would indicate a training failure).
double run_tuned_v(const Settings& settings, Engine& engine,
                   const tune::TunedConfig& config,
                   const tune::TrainingInstance& inst, int accuracy_index);
double run_tuned_fmg(const Settings& settings, Engine& engine,
                     const tune::TunedConfig& config,
                     const tune::TrainingInstance& inst, int accuracy_index);

/// Prints a titled table to stdout, writes `<name>.csv`, and writes
/// machine-readable `BENCH_<name>.json` (columns, rows, and median/p90 of
/// every timed trial recorded since the previous emission) to
/// settings.out_dir so the perf trajectory is trackable across PRs.
void emit_table(const Settings& settings, const std::string& name,
                const std::string& title, const TextTable& table);

/// Writes a custom machine-readable `BENCH_<name>.json` document (figures
/// with richer stats than a table, e.g. fig17's throughput scaling).
void emit_bench_json(const Settings& settings, const std::string& name,
                     const Json& doc);

/// Benchmark-wide metrics registry (obs/metrics.h).  Figures may record
/// their own counters/histograms here; every timed trial from time_min
/// lands in the `pbmg_bench_trial_seconds` histogram automatically, and
/// emit_table / emit_bench_json embed the registry snapshot under the
/// `metrics` key of every BENCH_*.json document.
obs::MetricsRegistry& metrics();

/// Registers `engine` so its scheduler/scratch statistics are published
/// into the bench registry (as `{engine="name"}`-labelled gauges) right
/// before every BENCH_*.json emission.  Re-tracking an existing name
/// rebinds it.  The engine must outlive subsequent emissions.
void track_engine(const std::string& name, Engine& engine);

/// Benchmark-wide progress line (stderr, so stdout stays machine-readable).
void progress(const std::string& line);

/// Levels [min_level, settings.max_level] as grid sides.
std::vector<int> bench_sizes(const Settings& settings, int min_level);

}  // namespace pbmg::bench
