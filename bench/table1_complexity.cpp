// Reproduces the paper's §2 complexity table:
//
//   Algorithm    Direct      SOR        Multigrid
//   Complexity   n^2 (N^4)   n^1.5 (N^3)  n (N^2)
//
// by measuring time-to-solution (accuracy 10^9) for each algorithm across
// grid sizes on a single thread and fitting the empirical exponent of N.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/harness.h"
#include "grid/level.h"
#include "support/stats.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(argc, argv, "table1_complexity",
                              "empirical complexity exponents (paper §2)");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  constexpr double kTarget = 1e9;

  Engine engine(engine_options(settings, rt::serial_profile()));

  const int direct_max_level = std::min(settings.max_level, 8);  // N <= 257
  const int sor_max_level = std::min(settings.max_level, 9);     // N <= 513

  TextTable table({"N", "direct (s)", "sor (s)", "multigrid (s)"});
  std::vector<double> ns_direct, t_direct, ns_sor, t_sor, ns_mg, t_mg;
  for (int level = 2; level <= settings.max_level; ++level) {
    const int n = size_of_level(level);
    const auto inst = eval_instance(settings, engine, n,
                                    InputDistribution::kUnbiased,
                                    /*salt=*/1);
    double direct = std::nan("");
    if (level <= direct_max_level) {
      direct = run_direct(settings, engine, inst);
      // Exclude the two smallest levels from the fit: fixed overheads
      // dominate there.
      if (level >= 4) {
        ns_direct.push_back(n);
        t_direct.push_back(direct);
      }
    }
    double sor = std::nan("");
    if (level <= sor_max_level) {
      sor = run_sor(settings, engine, inst, kTarget, 16 * n + 2000);
      if (level >= 4 && std::isfinite(sor)) {
        ns_sor.push_back(n);
        t_sor.push_back(sor);
      }
    }
    const double mg = run_reference_v(settings, engine, inst, kTarget);
    if (level >= 4 && std::isfinite(mg)) {
      ns_mg.push_back(n);
      t_mg.push_back(mg);
    }
    table.add_row({std::to_string(n), format_double(direct),
                   format_double(sor), format_double(mg)});
    progress("table1: N=" + std::to_string(n) + " done");
  }
  emit_table(settings, "table1_complexity",
             "Table 1: time to accuracy 10^9, single thread", table);

  TextTable fit({"algorithm", "measured exponent (time ~ N^e)",
                 "paper exponent"});
  const auto fit_row = [&](const char* name, const std::vector<double>& xs,
                           const std::vector<double>& ys, const char* paper) {
    const std::string measured =
        xs.size() >= 2 ? format_double(log_log_slope(xs, ys), 3) : "n/a";
    fit.add_row({name, measured, paper});
  };
  fit_row("direct (band Cholesky)", ns_direct, t_direct, "4 (n^2)");
  fit_row("SOR (omega_opt)", ns_sor, t_sor, "3 (n^1.5)");
  fit_row("multigrid (V cycles)", ns_mg, t_mg, "2 (n)");
  emit_table(settings, "table1_exponents",
             "Table 1 (fit): empirical scaling exponents", fit);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
