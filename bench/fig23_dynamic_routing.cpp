// "Figure 23" (beyond the paper): operator-aware dynamic serving.  The
// paper's §6 future work sketches algorithms that "switch between tuned
// versions of themselves" based on features of the input; fig18 showed
// the payoff of per-family tables measured offline.  This bench closes
// the serving loop: a mixed stream of operators — in-family (Poisson,
// exactly what the service was tuned for), near-family (a mildly varying
// smooth coefficient, close enough to serve from the Poisson tables),
// and novel (a high-contrast jump operator no generation has tables
// for) — flows through SolveService::solve_op, which fingerprints each
// operator, routes it to the nearest tuned family, and escalates across
// families when the input underperforms.  The first novel request fires
// a once-per-family background retune; its tables install as a
// generation *extension* while serving continues, and post-install the
// same operators reroute onto the fresh family.  Reported per phase:
// route outcomes (matched / escalated / retune), escalations, and the
// routed latency against an *oracle* — a DynamicSolver bound directly to
// the retuned jump tables — at equal achieved accuracy, plus the
// bit-stability of the in-family route across the install.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "engine/solve_service.h"
#include "grid/fingerprint.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/rng.h"
#include "tune/config_cache.h"
#include "tune/dynamic.h"
#include "tune/trainer.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

constexpr double kTarget = 1e5;  ///< equal-accuracy bar for every arm

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double median_of(std::vector<double> samples) {
  if (samples.empty()) return std::nan("");
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::int64_t counter_or_zero(const obs::RegistrySnapshot& snapshot,
                             const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

/// One operator kind in the mixed stream.
struct StreamArm {
  std::string name;            ///< row label
  grid::StencilOp op;
  std::vector<double> pre_seconds;   ///< routed latencies before install
  std::vector<double> post_seconds;  ///< routed latencies after install
  std::int64_t solves = 0;
  std::int64_t unconverged = 0;
  std::int64_t escalations = 0;
  std::int64_t family_switches = 0;
  std::string final_family;    ///< of the last routed solve
};

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig23_dynamic_routing",
      "Fig 23: fingerprint routing, cross-family escalation, and "
      "background family retune at equal achieved accuracy");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const auto dist = InputDistribution::kUnbiased;
  const int top_level = std::min(settings.max_level, 6);
  const int n = size_of_level(top_level);

  Engine engine(engine_options(settings, rt::MachineProfile{}));
  track_engine("fig23", engine);
  const std::string cache_dir = engine_options(settings,
                                               rt::MachineProfile{}).cache_dir;
  const auto config =
      get_tuned_config(settings, engine, dist, top_level, /*train_fmg=*/false);

  SolveService service(engine, config);
  // The background family retune: the paper's DP, trained on the
  // requested family's own coefficient hierarchy (fig18's "retuned" arm),
  // through the disk cache so smoke re-runs skip the training cost.
  const auto family_options = [&](OperatorFamily family) {
    tune::TrainerOptions options =
        trainer_options(settings, dist, top_level, /*train_fmg=*/false);
    options.op_family = family;
    return options;
  };
  service.enable_operator_routing(
      RoutePolicy{}, [&](OperatorFamily family) {
        progress("fig23: background retune for family '" +
                 to_string(family) + "' started");
        return tune::load_or_train(
            family_options(family), engine,
            cache_dir.empty() ? tune::default_cache_dir() : cache_dir);
      });

  // The mixed operator stream.  Distances to the Poisson reference tell
  // the routing story in advance: ~0 (in-family), small (near-family,
  // served matched by the Poisson tables), and far beyond the threshold
  // (novel — served anyway, but the real family trains in the
  // background).
  std::vector<StreamArm> arms;
  arms.push_back({"poisson (in-family)", grid::StencilOp::poisson(n),
                  {}, {}, 0, 0, 0, 0, ""});
  arms.push_back({"smooth (near-family)",
                  grid::StencilOp::from_coefficient(
                      n,
                      [](double x, double y) {
                        return 1.0 + 0.15 * std::sin(6.283185307179586 * x) *
                                         std::sin(6.283185307179586 * y);
                      }),
                  {}, {}, 0, 0, 0, 0, ""});
  arms.push_back({"jump (novel)",
                  make_operator(n, OperatorFamily::kJumpCoefficient),
                  {}, {}, 0, 0, 0, 0, ""});
  for (const StreamArm& arm : arms) {
    const grid::FamilyMatch match =
        grid::nearest_family(grid::fingerprint(arm.op));
    progress("fig23: " + arm.name + " -> nearest family '" +
             to_string(match.family) + "' at distance " +
             format_double(match.distance, 3));
  }

  Rng rng(settings.eval_seed);
  const auto problem = make_problem(n, dist, rng);
  SolveRequest request;
  request.target_accuracy = kTarget;

  const auto route_once = [&](StreamArm& arm, std::vector<double>& bucket) {
    Grid2D x(n, 0.0);
    x.copy_from(problem.x0);
    tune::DynamicResult detail;
    const SolveStats stats =
        service.solve_op(arm.op, x, problem.b, request, &detail);
    bucket.push_back(stats.seconds);
    ++arm.solves;
    if (!stats.converged) ++arm.unconverged;
    arm.escalations += detail.escalations;
    arm.family_switches += detail.family_switches;
    arm.final_family = detail.final_family;
    return x;
  };

  // Phase 1 — mixed stream against the Poisson-only generation.  The
  // first novel request fires the background retune; serving continues
  // on the stand-in tables meanwhile.
  const int per_arm = std::max(4, settings.trials);
  Grid2D golden_poisson(n, 0.0);
  for (int i = 0; i < per_arm; ++i) {
    for (StreamArm& arm : arms) {
      Grid2D x = route_once(arm, arm.pre_seconds);
      if (&arm == &arms.front() && i == 0) golden_poisson.copy_from(x);
    }
  }

  // Let the retune land (bounded wait; the smoke run trains one family
  // at laptop scale).
  for (int i = 0; i < 6000 && service.retune_in_progress(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto mid_stats = service.stats();
  progress("fig23: family retunes launched: " +
           std::to_string(mid_stats.family_retunes));

  // Phase 2 — same stream post-install: the novel operator now routes to
  // its own family's tables (matched, no cross-family escalation), and
  // the in-family route must reproduce its pre-install bits exactly.
  bool poisson_bit_stable = true;
  for (int i = 0; i < per_arm; ++i) {
    for (StreamArm& arm : arms) {
      Grid2D x = route_once(arm, arm.post_seconds);
      if (&arm == &arms.front()) {
        poisson_bit_stable =
            poisson_bit_stable && bitwise_equal(x, golden_poisson);
      }
    }
  }

  // Oracle arm: a DynamicSolver bound directly to the retuned jump
  // tables — what a clairvoyant dispatcher would have used from request
  // one.  Equal accuracy bar, same instance, untimed residual audits.
  const tune::TunedConfig jump_config = tune::load_or_train(
      family_options(OperatorFamily::kJumpCoefficient), engine,
      cache_dir.empty() ? tune::default_cache_dir() : cache_dir);
  const tune::DynamicSolver oracle(
      jump_config, make_operator(n, OperatorFamily::kJumpCoefficient),
      engine.scheduler(), engine.direct(), engine.scratch(),
      engine.relax());
  std::vector<double> oracle_seconds;
  for (int i = 0; i < per_arm; ++i) {
    Grid2D x(n, 0.0);
    x.copy_from(problem.x0);
    const auto result = oracle.solve(x, problem.b, kTarget);
    oracle_seconds.push_back(result.seconds);
  }

  const auto snapshot = service.metrics_snapshot();
  const auto stats = service.stats();
  const double jump_post = median_of(arms[2].post_seconds);
  const double oracle_median = median_of(oracle_seconds);
  const double vs_oracle =
      oracle_median > 0.0 ? jump_post / oracle_median : std::nan("");

  TextTable table({"operator", "solves", "pre-install med (s)",
                   "post-install med (s)", "escalations", "switches",
                   "final family"});
  Json rows = Json::array();
  for (const StreamArm& arm : arms) {
    table.add_row({arm.name, std::to_string(arm.solves),
                   format_double(median_of(arm.pre_seconds)),
                   format_double(median_of(arm.post_seconds)),
                   std::to_string(arm.escalations),
                   std::to_string(arm.family_switches), arm.final_family});
    Json row = Json::object();
    row.set("operator", arm.name);
    row.set("solves", arm.solves);
    row.set("unconverged", arm.unconverged);
    row.set("pre_install_median_s", median_of(arm.pre_seconds));
    row.set("post_install_median_s", median_of(arm.post_seconds));
    row.set("escalations", arm.escalations);
    row.set("family_switches", arm.family_switches);
    row.set("final_family", arm.final_family);
    rows.push_back(std::move(row));
  }
  table.add_row({"jump oracle (direct bind)",
                 std::to_string(oracle_seconds.size()), "-",
                 format_double(oracle_median), "-", "-", "jump"});

  Json doc = Json::object();
  doc.set("bench", "fig23_dynamic_routing");
  doc.set("n", std::int64_t{n});
  doc.set("target_accuracy", kTarget);
  doc.set("arms", std::move(rows));
  doc.set("oracle_median_s", oracle_median);
  // Acceptance: routed novel-operator latency post-install within noise
  // of the oracle (same tables, same prewarmed binding — the routing
  // layer's overhead is one cached map lookup).
  doc.set("post_install_over_oracle", vs_oracle);
  doc.set("family_retunes", stats.family_retunes);
  doc.set("generation", stats.generation);  // extension, not a swap
  doc.set("routed_requests", stats.routed_requests);
  doc.set("poisson_bit_stable_across_install", poisson_bit_stable);
  for (const char* family : {"poisson", "smooth", "jump"}) {
    for (const char* outcome : {"matched", "escalated", "retune"}) {
      const std::string name = std::string("pbmg_route_total{family=\"") +
                               family + "\",outcome=\"" + outcome + "\"}";
      doc.set(std::string(family) + "_" + outcome,
              counter_or_zero(snapshot, name));
    }
  }
  doc.set("service_metrics", obs::to_json(snapshot));
  emit_bench_json(settings, "fig23_dynamic_routing_detail", doc);

  emit_table(
      settings, "fig23_dynamic_routing",
      "Figure 23: operator-aware dynamic serving, N=" + std::to_string(n) +
          ", equal achieved accuracy 10^5 (" +
          std::to_string(stats.family_retunes) +
          " background family retune(s), generation " +
          std::to_string(stats.generation) +
          (poisson_bit_stable ? ", in-family bits stable across install"
                              : ", BIT DIVERGENCE on in-family route") +
          ", routed/oracle " + format_double(vs_oracle, 3) + ")",
      table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
