// "Figure 20" (beyond the paper): the payoff of making *coarsening* a
// tuned choice dimension.  The genuinely rotated anisotropy families
// (aniso-t30 / aniso-t45: −∇·(R(θ)ᵀdiag(1,ε)R(θ)∇u), ε = 10⁻²) need the
// 9-point stencil's corner couplings; averaged-coefficient coarsening
// drops exactly those couplings, so its coarse-grid corrections fight
// the dominant (diagonal) coupling — worst at θ = 45°, where the
// characteristic lies between the grid axes and line smoothers alone
// cannot follow it either.  For each family we train two DP
// configurations on identical options except the coarsening candidate
// list — the full space (Galerkin R·A·P plus the averaged ladder) versus
// the averaged-only 5-point space — and race them to the same achieved
// accuracy (>= 10^5) on held-out instances.  The per-level column shows
// what the autotuner *discovered*: RAP coarse operators (with the
// matching smoother) on the levels that matter, chosen per level rather
// than hard-coded.

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/harness.h"
#include "engine/solve_session.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "solvers/line_relax.h"
#include "support/timer.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

constexpr double kTargetAccuracy = 1e5;
constexpr int kMaxPasses = 24;
constexpr int kEvalInstances = 3;
constexpr int kReferenceCycleCap = 100;

struct ArmResult {
  bool trained = false;         ///< the DP found a feasible table
  bool converged = false;       ///< every instance reached the target
  double median_seconds = std::nan("");
  double worst_achieved = 0.0;
  std::vector<std::vector<int>> rung_sequences;
  std::vector<double> samples;
};

int rung_for(const tune::TunedConfig& config, double needed) {
  const auto& ladder = config.accuracies();
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] >= needed) return static_cast<int>(i);
  }
  return static_cast<int>(ladder.size()) - 1;
}

/// Untimed probe with the same ladder-descent drive as fig18/fig19: both
/// arms pay for misses identically, so the comparison measures tuning,
/// not pass quantization.
bool probe_arm(Engine& engine, const SolveSession& session,
               const std::vector<tune::TrainingInstance>& instances,
               ArmResult& result) {
  result.worst_achieved = std::numeric_limits<double>::infinity();
  const int top_rung = session.config().accuracy_count() - 1;
  for (const auto& inst : instances) {
    Grid2D x(inst.problem.n(), 0.0);
    x.copy_from(inst.problem.x0);
    std::vector<int> rungs;
    double achieved = 1.0;
    double best = 1.0;
    int rung = rung_for(session.config(), kTargetAccuracy);
    while (static_cast<int>(rungs.size()) < kMaxPasses &&
           achieved < kTargetAccuracy) {
      session.solve_v(x, inst.problem.b, rung);
      rungs.push_back(rung);
      achieved = tune::accuracy_of(inst, x, engine.scheduler());
      if (achieved > best) {
        best = achieved;
        rung = rung_for(session.config(), kTargetAccuracy / best);
      } else {
        rung = std::min(rung + 1, top_rung);
      }
    }
    if (achieved < kTargetAccuracy) return false;
    result.rung_sequences.push_back(std::move(rungs));
    result.worst_achieved = std::min(result.worst_achieved, achieved);
  }
  return true;
}

void time_arm(const Settings& settings, const SolveSession& session,
              const std::vector<tune::TrainingInstance>& instances,
              ArmResult& result) {
  const int trials = std::max(settings.trials, 3);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (int t = 0; t < trials; ++t) {
      Grid2D x(instances[i].problem.n(), 0.0);
      x.copy_from(instances[i].problem.x0);
      const double t0 = now_seconds();
      for (const int rung : result.rung_sequences[i]) {
        session.solve_v(x, instances[i].problem.b, rung);
      }
      result.samples.push_back(now_seconds() - t0);
    }
  }
  if (!result.samples.empty()) {
    std::sort(result.samples.begin(), result.samples.end());
    result.median_seconds = result.samples[result.samples.size() / 2];
  }
}

/// What the table picked on the RECURSE cells of the raced accuracy rung
/// (10^5 — the cells the timed arms actually execute), finest levels
/// first: "L7:rap/line_x L6:avg/point_rb ..." — the "what did the tuner
/// discover" column, now with the coarsening axis.
std::string discovered_choices(const tune::TunedConfig& config) {
  std::ostringstream oss;
  const int top = rung_for(config, kTargetAccuracy);
  for (int level = config.max_level(); level >= 2; --level) {
    const tune::VChoice& choice = config.v_entry(level, top).choice;
    oss << "L" << level << ":";
    switch (choice.kind) {
      case tune::VKind::kDirect: oss << "direct"; break;
      case tune::VKind::kIterSor: oss << "sor"; break;
      case tune::VKind::kRecurse:
        oss << grid::to_string(choice.coarsening) << "/"
            << solvers::to_string(choice.smoother);
        break;
    }
    if (level > 2) oss << " ";
  }
  return oss.str();
}

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig20_rotated_anisotropy",
      "Galerkin-RAP-enabled vs best 5-point averaged-coefficient config at "
      "equal achieved accuracy on the rotated-anisotropy (9-point) "
      "operator families");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const int level = settings.max_level;
  const int n = size_of_level(level);
  const std::string cache_dir = engine_options(settings,
                                               rt::MachineProfile{}).cache_dir;
  const std::string dir =
      cache_dir.empty() ? tune::default_cache_dir() : cache_dir;

  Engine engine(engine_options(settings, rt::MachineProfile{}));

  const auto train_arm = [&](OperatorFamily family, bool averaged_only,
                             tune::TunedConfig& out) {
    tune::TrainerOptions options =
        trainer_options(settings, InputDistribution::kUnbiased, level);
    options.op_family = family;
    options.train_fmg = false;
    if (averaged_only) options.coarsenings = {grid::Coarsening::kAverage};
    try {
      out = tune::load_or_train(options, engine, dir);
      return true;
    } catch (const Error&) {
      // No feasible candidate at some level: with 5-point coarse
      // operators the correction can genuinely stall once the direct
      // solver is out of reach.  That *is* the result: report the arm as
      // untrainable.
      return false;
    }
  };

  const OperatorFamily families[] = {OperatorFamily::kAnisoTheta30,
                                     OperatorFamily::kAnisoTheta45};

  Json rows = Json::array();
  TextTable table({"family", "avg-only (s)", "with-rap (s)", "speedup",
                   "zebra ref-V on avg ladder @cap",
                   "tuned choices (10^5 rung)"});
  for (const OperatorFamily family : families) {
    progress("fig20: training averaged-only arm for '" + to_string(family) +
             "'");
    tune::TunedConfig avg_config, rap_config;
    ArmResult avg_arm, rap_arm;
    avg_arm.trained = train_arm(family, /*averaged_only=*/true, avg_config);
    progress("fig20: training RAP-enabled arm for '" + to_string(family) +
             "'");
    rap_arm.trained = train_arm(family, /*averaged_only=*/false, rap_config);

    const grid::StencilOp op = make_operator(n, family);
    std::vector<tune::TrainingInstance> instances;
    Rng rng(settings.eval_seed);
    for (int i = 0; i < kEvalInstances; ++i) {
      Rng sub = rng.split(0xF2'0u + static_cast<std::uint64_t>(i));
      instances.push_back(tune::make_training_instance(
          op, InputDistribution::kUnbiased, sub, engine.scheduler()));
    }

    if (avg_arm.trained) {
      const SolveSession session(engine, avg_config, op);
      avg_arm.converged = probe_arm(engine, session, instances, avg_arm);
      if (avg_arm.converged) time_arm(settings, session, instances, avg_arm);
    }
    if (rap_arm.trained) {
      const SolveSession session(engine, rap_config, op);
      rap_arm.converged = probe_arm(engine, session, instances, rap_arm);
      if (rap_arm.converged) time_arm(settings, session, instances, rap_arm);
    }

    // The strongest 5-point reference: alternating zebra lines on the
    // averaged ladder, driven to the same target with a generous cap —
    // the "how far does the best paper-style cycle get without RAP"
    // column.
    const grid::StencilHierarchy avg_ladder(op);
    solvers::VCycleOptions ref_options;
    ref_options.relaxation = solvers::RelaxKind::kLineZebraAlt;
    Grid2D x(n, 0.0);
    x.copy_from(instances[0].problem.x0);
    double ref_achieved = 1.0;
    const auto outcome = solvers::solve_reference_v(
        avg_ladder, x, instances[0].problem.b, ref_options,
        kReferenceCycleCap,
        [&](const Grid2D& it, int) {
          ref_achieved =
              tune::accuracy_of(instances[0], it, engine.scheduler());
          return ref_achieved >= kTargetAccuracy;
        },
        engine.scheduler(), engine.direct(), engine.scratch());
    const std::string ref_note =
        outcome.converged
            ? "reaches 10^5 in " + std::to_string(outcome.iterations) +
                  " cycles"
            : "stalls at " + format_accuracy(ref_achieved) + " after " +
                  std::to_string(outcome.iterations) + " cycles";

    const std::string avg_cell =
        !avg_arm.trained ? "untrainable"
        : !avg_arm.converged ? "no contract"
                             : format_double(avg_arm.median_seconds);
    const double speedup = avg_arm.converged && rap_arm.converged
                               ? avg_arm.median_seconds /
                                     rap_arm.median_seconds
                               : std::numeric_limits<double>::infinity();
    table.add_row(
        {to_string(family), avg_cell,
         rap_arm.converged ? format_double(rap_arm.median_seconds) : "DNF",
         std::isfinite(speedup) ? format_double(speedup, 3) : "inf",
         ref_note, discovered_choices(rap_config)});

    Json row = Json::object();
    row.set("family", to_string(family));
    row.set("n", std::int64_t{n});
    row.set("target_accuracy", kTargetAccuracy);
    row.set("avg_only_trained", avg_arm.trained);
    row.set("avg_only_converged", avg_arm.converged);
    row.set("avg_only_seconds",
            avg_arm.converged ? avg_arm.median_seconds : -1.0);
    row.set("with_rap_seconds",
            rap_arm.converged ? rap_arm.median_seconds : -1.0);
    // The evidence for the "equal achieved accuracy" framing: the lowest
    // accuracy either arm actually delivered over the instances.
    row.set("avg_only_achieved",
            avg_arm.converged ? avg_arm.worst_achieved : -1.0);
    row.set("with_rap_achieved",
            rap_arm.converged ? rap_arm.worst_achieved : -1.0);
    row.set("speedup", std::isfinite(speedup) ? speedup : -1.0);
    row.set("reference_zebra_avg_converged", outcome.converged);
    row.set("reference_zebra_avg_achieved", ref_achieved);
    row.set("tuned_choices", discovered_choices(rap_config));
    rows.push_back(std::move(row));
    progress("fig20: family '" + to_string(family) + "' done");
  }

  emit_table(settings, "fig20_rotated_anisotropy",
             "coarsening as a tuned choice: averaged-only vs RAP-enabled DP "
             "tables, N=" + std::to_string(n) +
                 ", equal achieved accuracy >= 10^5 (median over " +
                 std::to_string(kEvalInstances) + " instances)",
             table);
  Json doc = Json::object();
  doc.set("n", std::int64_t{n});
  doc.set("target_accuracy", kTargetAccuracy);
  doc.set("families", std::move(rows));
  emit_bench_json(settings, "fig20_rotated_anisotropy_detail", doc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
