// "Figure 17" (beyond the paper): multi-tenant throughput of the
// SolveService front-end.  N client threads hammer one Engine with mixed
// problem sizes; because the work-stealing scheduler composes nested
// parallelism, aggregate requests/sec should scale with client count on a
// multi-core machine (flattening once the worker pool saturates) instead
// of collapsing the way per-request thread pools would.  Emits the
// throughput/latency table plus machine-readable BENCH_*.json with
// median/p90 latency per client count.

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "engine/solve_service.h"
#include "grid/level.h"
#include "obs/metrics.h"
#include "obs/phase_profile.h"
#include "support/timer.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(
      argc, argv, "fig17_concurrent_service",
      "Fig 17: SolveService throughput vs concurrent clients");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const auto dist = InputDistribution::kUnbiased;
  // Per-request latency must stay small enough that the scaling sweep
  // finishes at laptop scale; cap the service's level range.
  const int top_level = std::min(settings.max_level, 7);

  Engine engine(engine_options(settings, rt::harpertown_profile()));
  track_engine("fig17", engine);
  const auto config =
      get_tuned_config(settings, engine, dist, top_level, /*train_fmg=*/false);
  const int acc_index = config.accuracy_index(1e5);
  SolveService service(engine, config);
  // One PhaseProfile shared by every request: a multi-tenant per-level
  // phase breakdown of where the service's wall time actually went.
  auto phases = std::make_shared<obs::PhaseProfile>();

  // Mixed request sizes: the service binds one prepared session per size.
  std::vector<tune::TrainingInstance> instances;
  for (int level = std::max(4, top_level - 2); level <= top_level; ++level) {
    instances.push_back(
        eval_instance(settings, engine, size_of_level(level), dist,
                      /*salt=*/17));
  }
  const int requests_per_client = std::max(6, 2 * settings.trials);

  // Warm every session (and the scratch pool) once, outside the timed
  // regions; a service measures steady-state throughput, not cold-start.
  for (const auto& inst : instances) {
    Grid2D x(inst.problem.n(), 0.0);
    x.copy_from(inst.problem.x0);
    SolveRequest request;
    request.accuracy_index = acc_index;
    service.solve(x, inst.problem.b, request);
  }

  TextTable table({"clients", "requests", "wall (s)", "req/s", "p50 (s)",
                   "p90 (s)", "p99 (s)", "throughput scaling"});
  Json per_clients = Json::array();
  double base_rps = std::nan("");
  for (int clients : {1, 2, 4, 8}) {
    // Per-run latency distribution from a real obs::Histogram: workers
    // record lock-free while solving, and the percentiles below come from
    // the bucketized distribution — the same machinery the service's own
    // per-(n, accuracy) histograms use — rather than a sorted raw vector.
    obs::Histogram run_hist;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int r = 0; r < requests_per_client; ++r) {
          const auto& inst =
              instances[static_cast<std::size_t>(c + r) % instances.size()];
          Grid2D x(inst.problem.n(), 0.0);
          x.copy_from(inst.problem.x0);
          SolveRequest request;
          request.accuracy_index = acc_index;
          request.profile = phases;
          const SolveStats stats = service.solve(x, inst.problem.b, request);
          run_hist.record(stats.seconds);
        }
      });
    }
    const double t0 = now_seconds();
    go.store(true, std::memory_order_release);
    for (auto& worker : workers) worker.join();
    const double wall = now_seconds() - t0;

    const obs::HistogramSnapshot latency = run_hist.snapshot();
    const double rps = static_cast<double>(latency.count) / wall;
    if (std::isnan(base_rps)) base_rps = rps;
    table.add_row({std::to_string(clients),
                   std::to_string(latency.count), format_double(wall),
                   format_double(rps), format_double(latency.percentile(50.0)),
                   format_double(latency.percentile(90.0)),
                   format_double(latency.percentile(99.0)),
                   format_double(rps / base_rps, 3)});
    Json row = Json::object();
    row.set("clients", clients);
    row.set("requests", latency.count);
    row.set("wall_s", wall);
    row.set("requests_per_second", rps);
    row.set("latency_p50_s", latency.percentile(50.0));
    row.set("latency_p90_s", latency.percentile(90.0));
    row.set("latency_p99_s", latency.percentile(99.0));
    row.set("latency_mean_s", latency.mean());
    row.set("latency_max_s", latency.max);
    row.set("throughput_scaling", rps / base_rps);
    per_clients.push_back(std::move(row));
    progress("fig17: clients=" + std::to_string(clients) + " done (" +
             format_double(rps) + " req/s)");
  }

  const auto pool_stats = engine.scratch().stats();
  const auto service_stats = service.stats();
  Json doc = Json::object();
  doc.set("bench", "fig17_concurrent_service");
  doc.set("profile", engine.profile().name);
  doc.set("engine_threads", engine.scheduler().thread_count());
  doc.set("hardware_threads",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  doc.set("scaling", std::move(per_clients));
  doc.set("service_requests", service_stats.requests);
  doc.set("warmup_requests", static_cast<std::int64_t>(instances.size()));
  doc.set("scratch_hit_rate", pool_stats.hit_rate());
  doc.set("scratch_high_water_bytes",
          static_cast<std::int64_t>(pool_stats.high_water_bytes));
  // Where the service's solve time went, per multigrid level and phase
  // (aggregated across every request of the whole sweep).
  doc.set("phases", obs::to_json(*phases));
  // The service's own registry: per-(n, accuracy) latency histograms plus
  // request/failure counters and the engine gauges it publishes.
  doc.set("service_metrics", obs::to_json(service.metrics_snapshot()));
  emit_bench_json(settings, "fig17_concurrent_service_scaling", doc);

  emit_table(settings, "fig17_concurrent_service",
             "Figure 17: SolveService throughput vs client count (" +
                 engine.profile().name + " engine, mixed sizes, accuracy "
                 "10^5)",
             table);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
