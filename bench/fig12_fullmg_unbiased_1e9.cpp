// Reproduces Figure 12: as Figure 10 but to an accuracy of 10^9.  The
// paper reports the tuned advantage shrinking at high accuracy and large
// size (most time is unavoidable fine-grid relaxation); expect tuned
// curves near 1.0 at the largest sizes.

#include "common/fullmg_figure.h"

int main(int argc, char** argv) {
  auto maybe = pbmg::bench::parse_settings(
      argc, argv, "fig12_fullmg_unbiased_1e9",
      "Fig 12: relative time vs reference V, unbiased data, accuracy 10^9");
  if (!maybe) return 0;
  return pbmg::bench::run_fullmg_figure(
      *maybe, pbmg::InputDistribution::kUnbiased, 1e9, "fig12",
      "Figure 12: unbiased data, accuracy 10^9");
}
