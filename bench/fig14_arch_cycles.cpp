// Reproduces Figure 14: tuned full multigrid cycles across the three
// machine profiles, all solving the 2D Poisson equation on unbiased data
// to accuracy 10^5.  The paper's point is that each architecture gets a
// different optimized cycle shape; expect the rendered cycles (and their
// op counts) to differ across profiles.

#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/harness.h"
#include "grid/level.h"
#include "trace/cycle_trace.h"

namespace {

using namespace pbmg;
using namespace pbmg::bench;

int main_impl(int argc, const char* const* argv) {
  auto maybe = parse_settings(argc, argv, "fig14_arch_cycles",
                              "Fig 14: tuned FMG cycles per machine profile");
  if (!maybe) return 0;
  const Settings settings = *maybe;
  const rt::MachineProfile profiles[] = {rt::harpertown_profile(),
                                         rt::barcelona_profile(),
                                         rt::niagara_profile()};
  const char* roman[] = {"i", "ii", "iii"};
  const int n = size_of_level(settings.max_level);

  std::ostringstream out;
  for (int p = 0; p < 3; ++p) {
    Engine engine(engine_options(settings, profiles[p]));
    const auto config = get_tuned_config(settings, engine,
                                         InputDistribution::kUnbiased,
                                         settings.max_level);
    const auto inst = eval_instance(settings, engine, n,
                                    InputDistribution::kUnbiased, /*salt=*/14);
    trace::CycleTracer tracer;
    tune::TunedExecutor executor(config, engine.scheduler(), engine.direct(),
                                 engine.scratch(), &tracer, engine.relax());
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    executor.run_fmg(x, inst.problem.b, config.accuracy_index(1e5));
    out << "--- Figure 14(" << roman[p] << "): " << profiles[p].name
        << ", tuned FULL-MG to 10^5 at N=" << n << " ---\n"
        << "  [" << trace::summarize(tracer.events()) << "]\n"
        << trace::render_cycle(tracer.events()) << '\n'
        << tune::render_fmg_call_stack(config, settings.max_level,
                                       config.accuracy_index(1e5))
        << '\n';
  }
  std::cout << out.str();
  std::error_code ec;
  std::filesystem::create_directories(settings.out_dir, ec);
  write_text_file(settings.out_dir + "/fig14_arch_cycles.txt", out.str());
  std::cout << "(text: " << settings.out_dir << "/fig14_arch_cycles.txt)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
