// Quickstart: autotune a variable-accuracy multigrid solver for the 2-D
// Poisson equation and solve a random instance with it.
//
// Build & run (from the repository root):
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--n 129] [--accuracy 1e7]
//
// The example trains the paper's dynamic-programming autotuner bottom-up
// (a few seconds at the default size), then runs the tuned MULTIGRID-V
// algorithm and reports the achieved error-reduction ratio.

#include <iostream>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/argparse.h"
#include "support/table.h"
#include "support/timer.h"
#include "tune/accuracy.h"
#include "tune/executor.h"
#include "tune/trainer.h"

int main(int argc, char** argv) {
  using namespace pbmg;
  ArgParser parser("quickstart", "autotune and solve a Poisson problem");
  parser.add_int("n", 129, "grid side (2^k + 1)");
  parser.add_double("accuracy", 1e7, "target accuracy level (10^odd, <=1e9)");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return 0;
  }
  const int n = static_cast<int>(parser.get_int("n"));
  const double target = parser.get_double("accuracy");

  // The Engine owns the runtime a tuned solver needs: scheduler (default
  // machine profile here), scratch pool, and direct solver.
  Engine engine;
  auto& sched = engine.scheduler();

  // 1. Autotune: build MULTIGRID-V_i for every accuracy level up to the
  //    requested grid size (the V table is enough for this example).
  tune::TrainerOptions options;
  options.max_level = level_of_size(n);
  options.train_fmg = false;
  std::cout << "Autotuning up to N=" << n << " ..." << std::endl;
  WallTimer train_timer;
  tune::Trainer trainer(options, engine);
  const tune::TunedConfig config = trainer.train();
  std::cout << "  trained in " << format_seconds(train_timer.elapsed())
            << "\n\nTuned plan for accuracy " << format_accuracy(target)
            << ":\n"
            << tune::render_call_stack(config, options.max_level,
                                       config.accuracy_index(target));

  // 2. Solve a fresh random instance with the tuned algorithm.
  Rng rng(2026);
  auto instance = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, sched);
  tune::TunedExecutor executor(config, sched, engine.direct(),
                               engine.scratch());
  Grid2D x(n, 0.0);
  x.copy_from(instance.problem.x0);
  WallTimer solve_timer;
  executor.run_v(x, instance.problem.b, config.accuracy_index(target));
  const double seconds = solve_timer.elapsed();

  // 3. Report: the tuned algorithm contracts the error by >= the target.
  const double achieved = tune::accuracy_of(instance, x, sched);
  std::cout << "\nSolved N=" << n << " in " << format_seconds(seconds)
            << "; achieved accuracy " << format_double(achieved, 3)
            << " (target " << format_accuracy(target) << ")\n";
  return achieved >= 0.1 * target ? 0 : 1;
}
