// Demonstrates the src/search/ subsystem: a population search over the
// machine profile's runtime parameters (worker count, grain, sequential
// cutoff) and the relaxation weights, raced on a real multigrid workload.
//
// Build & run (from the repository root):
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/search_profile [--level 5] [--generations 4]
//
// The search starts from the default machine profile, mutates candidates
// sgatuner-style, and prints the winning parameters next to the defaults
// with the measured workload times.

#include <iostream>

#include "grid/level.h"
#include "search/profile_search.h"
#include "support/argparse.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace pbmg;
  ArgParser parser("search_profile",
                   "population-search the runtime parameters of this machine");
  parser.add_int("level", 5, "workload grid level (N = 2^level + 1)");
  parser.add_int("generations", 4, "population-search generations");
  parser.add_int("population", 4, "elites kept per generation");
  parser.add_int("seed", 20091114, "search RNG seed");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return 0;
  }

  // 1. The searchable space: every dimension with range and default.
  const rt::MachineProfile base;  // "default" profile
  const search::ParamSpace space = search::make_profile_space(base);
  std::cout << "Search space over profile '" << base.name << "':\n";
  for (const search::Dimension& dim : space.dimensions()) {
    std::cout << "  " << dim.name << " in [" << dim.lo << ", " << dim.hi
              << "], default " << dim.def << '\n';
  }

  // 2. Run the search: mutate-and-race with early-abandon pruning.
  search::ProfileSearchOptions options;
  options.base = base;
  options.level = static_cast<int>(parser.get_int("level"));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  options.population.generations =
      static_cast<int>(parser.get_int("generations"));
  options.population.population =
      static_cast<int>(parser.get_int("population"));
  options.log = [](const std::string& line) { std::cerr << line << '\n'; };

  // Every candidate the search races is evaluated on its own Engine —
  // no process-wide profile or relaxation state is touched.
  const search::SearchedProfile searched = search::search_profile(options);

  // 3. Report what the search found.
  std::cout << "\nSearched profile (workload N="
            << size_of_level(options.level) << "):\n"
            << "  threads                  " << base.threads << " -> "
            << searched.profile.threads << '\n'
            << "  grain_rows               " << base.grain_rows << " -> "
            << searched.profile.grain_rows << '\n'
            << "  sequential_cutoff_cells  " << base.sequential_cutoff_cells
            << " -> " << searched.profile.sequential_cutoff_cells << '\n'
            << "  recurse_omega            " << solvers::kRecurseOmega
            << " -> " << format_double(searched.relax.recurse_omega, 4) << '\n'
            << "  omega_scale              1 -> "
            << format_double(searched.relax.omega_scale, 4) << '\n'
            << "\nWorkload time: " << format_seconds(searched.default_seconds)
            << " (default) -> " << format_seconds(searched.searched_seconds)
            << " (searched), " << searched.evaluations << " evaluations\n"
            << "\nAs JSON (what tune::load_or_search_train persists):\n"
            << searched.to_json().dump(2) << '\n';
  return searched.searched_seconds <= searched.default_seconds ? 0 : 1;
}
