// Variable-coefficient operators: tune a scenario, bind it to a session,
// solve.
//
// Build & run (from the repository root):
//   cmake -B build && cmake --build build
//   ./build/examples/variable_coefficient [--n 65] [--family jump]
//
// "Scenario" in the paper means input distribution and size; this example
// shows the third axis — the operator itself.  It tunes MULTIGRID-V for a
// chosen operator family (-∇·(a∇u) + c·u, see grid/stencil_op.h), binds a
// SolveSession to the operator (which restricts the coefficient hierarchy
// once, up front), and solves a held-out instance, reporting the achieved
// error-reduction ratio.

#include <iostream>

#include "engine/solve_session.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/argparse.h"
#include "support/table.h"
#include "support/timer.h"
#include "tune/accuracy.h"
#include "tune/trainer.h"

int main(int argc, char** argv) {
  using namespace pbmg;
  ArgParser parser("variable_coefficient",
                   "tune and solve a variable-coefficient scenario");
  parser.add_int("n", 65, "grid side (2^k + 1)");
  parser.add_string(
      "family", "jump",
      "operator family: poisson|smooth|jump|aniso|aniso1000|aniso-rot|"
      "aniso-t30|aniso-t45");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return 0;
  }
  const int n = static_cast<int>(parser.get_int("n"));
  const OperatorFamily family =
      parse_operator_family(parser.get_string("family"));

  Engine engine;

  // 1. Tune for the scenario: the operator family is part of the trainer
  //    options (and of the config-cache key, had we gone through
  //    Engine::tuned_config), so every family gets its own tables.
  tune::TrainerOptions options;
  options.max_level = level_of_size(n);
  options.op_family = family;
  options.train_fmg = false;
  std::cout << "Tuning MULTIGRID-V for family '" << to_string(family)
            << "' up to N=" << n << " ..." << std::endl;
  WallTimer train_timer;
  tune::Trainer trainer(options, engine);
  const tune::TunedConfig config = trainer.train();
  std::cout << "  trained in " << format_seconds(train_timer.elapsed())
            << "\n";

  // 2. Bind operator + config + engine into a session.  The session
  //    restricts the operator's coefficients down the level hierarchy once;
  //    solves never re-coarsen them.
  SolveSession session(engine, config, make_operator(n, family));

  // 3. Solve a fresh instance of the scenario at the top tuned accuracy.
  Rng rng(2026);
  const auto instance = tune::make_training_instance(
      session.op(), InputDistribution::kUnbiased, rng, engine.scheduler());
  const int top = config.accuracy_count() - 1;
  Grid2D x = instance.problem.x0;
  const SolveStats stats = session.solve_v(x, instance.problem.b, top);
  std::cout << "Solved N=" << n << " in " << format_seconds(stats.seconds)
            << "; achieved accuracy "
            << format_accuracy(
                   tune::accuracy_of(instance, x, engine.scheduler()))
            << " (target "
            << format_accuracy(config.accuracies()[
                   static_cast<std::size_t>(top)])
            << ")\n";
  return 0;
}
