// Electrostatics: potential of point charges in a grounded box.
//
//   ∇²φ = −ρ/ε   (here scaled to A·x = b with point sources in b)
//
// This is the paper's "point sources/sinks" input class (§4).  The example
// places a dipole plus a few random charges in a grounded (zero-boundary)
// domain, solves with the reference full-multigrid algorithm and with a
// tuned solver, renders the potential as an ASCII contour map, and checks
// both against the spectral oracle.
//
//   ./build/examples/electrostatics [--n 257]

#include <cmath>
#include <iostream>
#include <string>

#include "engine/engine.h"
#include "fft/fast_poisson.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "solvers/multigrid.h"
#include "support/argparse.h"
#include "support/table.h"
#include "support/timer.h"
#include "tune/accuracy.h"
#include "tune/executor.h"
#include "tune/trainer.h"

namespace {

using namespace pbmg;

/// Renders the interior of a grid as a coarse ASCII intensity map.
std::string ascii_field(const Grid2D& g, int rows = 24, int cols = 48) {
  const char* shades = " .:-=+*#%@";
  const int n = g.n();
  double lo = 0.0, hi = 0.0;
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      lo = std::min(lo, g(i, j));
      hi = std::max(hi, g(i, j));
    }
  }
  const double span = hi - lo > 0 ? hi - lo : 1.0;
  std::string out;
  for (int r = 0; r < rows; ++r) {
    const int i = 1 + r * (n - 2) / rows;
    for (int c = 0; c < cols; ++c) {
      const int j = 1 + c * (n - 2) / cols;
      const int shade =
          static_cast<int>(9.99 * (g(i, j) - lo) / span);
      out.push_back(shades[shade]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("electrostatics",
                   "potential of point charges in a grounded box");
  parser.add_int("n", 257, "grid side (2^k + 1)");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return 0;
  }
  const int n = static_cast<int>(parser.get_int("n"));
  Engine engine;
  auto& sched = engine.scheduler();
  auto& direct = engine.direct();

  // Charge configuration: a strong dipole on the diagonal plus background
  // charges drawn from the paper's point-source distribution.
  Rng rng(7);
  PoissonProblem problem =
      make_problem(n, InputDistribution::kPointSources, rng);
  const double q = 4294967296.0;  // 2^32, the paper's source magnitude
  problem.b(n / 3, n / 3) += 3.0 * q;
  problem.b(2 * n / 3, 2 * n / 3) -= 3.0 * q;

  // Oracle (spectral) solution for verification.
  const Grid2D exact = fft::exact_solution(problem, sched);
  const double e0 =
      grid::norm2_diff_interior(problem.x0, exact, sched);

  // Reference full multigrid until accuracy 1e7.
  Grid2D x_ref(n, 0.0);
  x_ref.copy_from(problem.x0);
  WallTimer ref_timer;
  const auto outcome = solvers::solve_reference_fmg(
      x_ref, problem.b, solvers::VCycleOptions{}, 100,
      [&](const Grid2D& state, int) {
        return e0 / grid::norm2_diff_interior(state, exact, sched) >= 1e7;
      },
      sched, direct, engine.scratch());
  const double ref_seconds = ref_timer.elapsed();

  // Tuned solver at the same accuracy.
  tune::TrainerOptions options;
  options.max_level = level_of_size(n);
  options.distribution = InputDistribution::kPointSources;
  std::cout << "Autotuning on the point-source distribution ..." << std::endl;
  tune::Trainer trainer(options, engine);
  const tune::TunedConfig config = trainer.train();
  tune::TunedExecutor executor(config, sched, direct, engine.scratch());
  Grid2D x_tuned(n, 0.0);
  x_tuned.copy_from(problem.x0);
  WallTimer tuned_timer;
  executor.run_fmg(x_tuned, problem.b, config.accuracy_index(1e7));
  const double tuned_seconds = tuned_timer.elapsed();

  std::cout << "\nPotential field (ASCII, @=high, ' '=low):\n"
            << ascii_field(x_tuned)
            << "\nreference FMG: " << format_seconds(ref_seconds) << " ("
            << outcome.iterations << " cycles), accuracy "
            << format_double(
                   e0 / grid::norm2_diff_interior(x_ref, exact, sched), 3)
            << "\ntuned FMG:     " << format_seconds(tuned_seconds)
            << ", accuracy "
            << format_double(
                   e0 / grid::norm2_diff_interior(x_tuned, exact, sched), 3)
            << "\n";
  return 0;
}
