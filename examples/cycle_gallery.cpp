// Cycle gallery: autotune and render the tuned V and full-multigrid cycle
// shapes for every accuracy level, like the paper's Figure 5, plus the
// call-stack view of Figure 4.  A quick way to *see* what the autotuner
// decided on this machine.
//
//   ./build/examples/cycle_gallery [--n 129] [--distribution biased]

#include <iostream>

#include "engine/engine.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/argparse.h"
#include "support/table.h"
#include "trace/cycle_trace.h"
#include "tune/accuracy.h"
#include "tune/executor.h"
#include "tune/trainer.h"

int main(int argc, char** argv) {
  using namespace pbmg;
  ArgParser parser("cycle_gallery", "render tuned multigrid cycle shapes");
  parser.add_int("n", 129, "grid side (2^k + 1)");
  parser.add_string("distribution", "unbiased",
                    "unbiased | biased | point-sources");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return 0;
  }
  const int n = static_cast<int>(parser.get_int("n"));
  const auto dist = parse_distribution(parser.get_string("distribution"));
  Engine engine;
  auto& sched = engine.scheduler();
  auto& direct = engine.direct();

  tune::TrainerOptions options;
  options.max_level = level_of_size(n);
  options.distribution = dist;
  std::cout << "Autotuning for N=" << n << " on " << to_string(dist)
            << " data ..." << std::endl;
  tune::Trainer trainer(options, engine);
  const tune::TunedConfig config = trainer.train();

  Rng rng(99);
  auto instance = tune::make_training_instance(n, dist, rng, sched);

  for (int i = 0; i < config.accuracy_count(); ++i) {
    const std::string acc = format_accuracy(
        config.accuracies()[static_cast<std::size_t>(i)]);
    std::cout << "\n==================== accuracy " << acc
              << " ====================\n";
    std::cout << "call stack:\n"
              << tune::render_call_stack(config, options.max_level, i);
    {
      trace::CycleTracer tracer;
      tune::TunedExecutor executor(config, sched, direct, engine.scratch(),
                                   &tracer);
      Grid2D x(n, 0.0);
      x.copy_from(instance.problem.x0);
      executor.run_v(x, instance.problem.b, i);
      std::cout << "tuned V cycle  [" << trace::summarize(tracer.events())
                << "], achieved "
                << format_double(tune::accuracy_of(instance, x, sched), 3)
                << ":\n"
                << trace::render_cycle(tracer.events());
    }
    {
      trace::CycleTracer tracer;
      tune::TunedExecutor executor(config, sched, direct, engine.scratch(),
                                   &tracer);
      Grid2D x(n, 0.0);
      x.copy_from(instance.problem.x0);
      executor.run_fmg(x, instance.problem.b, i);
      std::cout << "tuned full-MG cycle  ["
                << trace::summarize(tracer.events()) << "], achieved "
                << format_double(tune::accuracy_of(instance, x, sched), 3)
                << ":\n"
                << trace::render_cycle(tracer.events());
    }
  }
  return 0;
}
