// Tune-and-save workflow: reproduce the PetaBricks deployment model
// (§3.2.1) — autotune once, persist the configuration file, and have later
// runs load it instead of retraining.
//
//   ./build/examples/tune_and_save [--n 129] [--config my_solver.json]
//
// First run: trains and writes the config.  Subsequent runs: load the
// config, validate it against this build, solve immediately.

#include <filesystem>
#include <iostream>

#include "engine/engine.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/argparse.h"
#include "support/table.h"
#include "support/timer.h"
#include "tune/accuracy.h"
#include "tune/executor.h"
#include "tune/trainer.h"

int main(int argc, char** argv) {
  using namespace pbmg;
  ArgParser parser("tune_and_save", "train once, reuse the config file");
  parser.add_int("n", 129, "grid side (2^k + 1)");
  parser.add_string("config", "pbmg_solver_config.json",
                    "configuration file path");
  parser.add_flag("retrain", "ignore an existing config file");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return 0;
  }
  const int n = static_cast<int>(parser.get_int("n"));
  const std::string path = parser.get_string("config");
  Engine engine;
  auto& sched = engine.scheduler();

  tune::TunedConfig config;
  bool loaded = false;
  if (!parser.get_flag("retrain") && std::filesystem::exists(path)) {
    try {
      config = tune::TunedConfig::load(path);
      if (config.max_level() >= level_of_size(n)) {
        loaded = true;
        std::cout << "Loaded tuned config from " << path << " (trained on '"
                  << config.profile_name << "', " << config.distribution
                  << " data, strategy " << config.strategy << ")\n";
      } else {
        std::cout << "Config in " << path
                  << " covers only levels up to " << config.max_level()
                  << "; retraining.\n";
      }
    } catch (const Error& e) {
      std::cout << "Could not load " << path << " (" << e.what()
                << "); retraining.\n";
    }
  }
  if (!loaded) {
    tune::TrainerOptions options;
    options.max_level = level_of_size(n);
    std::cout << "Training (this is the slow, once-per-machine step) ..."
              << std::endl;
    WallTimer timer;
    tune::Trainer trainer(options, engine);
    config = trainer.train();
    config.save(path);
    std::cout << "Trained in " << format_seconds(timer.elapsed())
              << " and saved to " << path << '\n';
  }

  // Solve a fresh instance at every accuracy level and report the
  // (time, achieved accuracy) frontier — the paper's optimal-set idea.
  Rng rng(1234);
  auto instance = tune::make_training_instance(
      n, parse_distribution(config.distribution), rng, sched);
  tune::TunedExecutor executor(config, sched, engine.direct(),
                               engine.scratch());
  std::cout << "\n  target     time         achieved accuracy\n";
  for (int i = 0; i < config.accuracy_count(); ++i) {
    Grid2D x(n, 0.0);
    x.copy_from(instance.problem.x0);
    WallTimer timer;
    executor.run_v(x, instance.problem.b, i);
    const double seconds = timer.elapsed();
    std::cout << "  "
              << format_accuracy(
                     config.accuracies()[static_cast<std::size_t>(i)])
              << "       " << format_seconds(seconds) << "     "
              << format_double(tune::accuracy_of(instance, x, sched), 3)
              << '\n';
  }
  return 0;
}
