// Steady-state heat conduction in a square plate (Laplace equation):
// the top edge is held hot, the bottom edge cold, the sides follow a
// linear ramp.  The interior temperature solves A·x = 0 with Dirichlet
// boundary data — the b ≡ 0 special case of the paper's benchmark problem.
//
// The example compares iterated SOR, the reference V-cycle and the tuned
// solver on the same plate and prints the centre-column temperature
// profile (which should be close to linear in y for this configuration).
//
//   ./build/examples/heat_plate [--n 129] [--hot 100] [--cold 0]

#include <cmath>
#include <iostream>

#include "engine/engine.h"
#include "fft/fast_poisson.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "solvers/multigrid.h"
#include "solvers/relax.h"
#include "support/argparse.h"
#include "support/table.h"
#include "support/timer.h"
#include "tune/accuracy.h"
#include "tune/executor.h"
#include "tune/trainer.h"

int main(int argc, char** argv) {
  using namespace pbmg;
  ArgParser parser("heat_plate", "steady-state heat conduction demo");
  parser.add_int("n", 129, "grid side (2^k + 1)");
  parser.add_double("hot", 100.0, "top-edge temperature");
  parser.add_double("cold", 0.0, "bottom-edge temperature");
  if (!parser.parse(argc, argv)) {
    std::cout << parser.help_text();
    return 0;
  }
  const int n = static_cast<int>(parser.get_int("n"));
  const double hot = parser.get_double("hot");
  const double cold = parser.get_double("cold");
  Engine engine;
  auto& sched = engine.scheduler();
  auto& direct = engine.direct();

  // Plate: row 0 = cold edge (y = 0), row n-1 = hot edge; side edges ramp.
  PoissonProblem plate;
  plate.b = Grid2D(n, 0.0);
  plate.x0 = Grid2D(n, 0.0);
  for (int j = 0; j < n; ++j) {
    plate.x0(0, j) = cold;
    plate.x0(n - 1, j) = hot;
  }
  for (int i = 1; i < n - 1; ++i) {
    const double ramp = cold + (hot - cold) * i / (n - 1.0);
    plate.x0(i, 0) = ramp;
    plate.x0(i, n - 1) = ramp;
  }

  const Grid2D exact = fft::exact_solution(plate, sched);
  const double e0 = grid::norm2_diff_interior(plate.x0, exact, sched);
  const double target = 1e5;
  const auto accuracy = [&](const Grid2D& x) {
    return e0 / grid::norm2_diff_interior(x, exact, sched);
  };

  // Iterated SOR.
  Grid2D x_sor(n, 0.0);
  x_sor.copy_from(plate.x0);
  WallTimer sor_timer;
  const auto sor_out = solvers::solve_iterated_sor(
      x_sor, plate.b, solvers::omega_opt(n), 100000,
      [&](const Grid2D& state, int) { return accuracy(state) >= target; },
      sched);
  const double sor_seconds = sor_timer.elapsed();

  // Reference V cycles.
  Grid2D x_ref(n, 0.0);
  x_ref.copy_from(plate.x0);
  WallTimer ref_timer;
  const auto ref_out = solvers::solve_reference_v(
      x_ref, plate.b, solvers::VCycleOptions{}, 100,
      [&](const Grid2D& state, int) { return accuracy(state) >= target; },
      sched, direct, engine.scratch());
  const double ref_seconds = ref_timer.elapsed();

  // Tuned solver (trained on the unbiased distribution; the plate is a
  // mild out-of-distribution input, which the accuracy check below makes
  // visible).
  tune::TrainerOptions options;
  options.max_level = level_of_size(n);
  options.train_fmg = false;
  tune::Trainer trainer(options, engine);
  std::cout << "Autotuning ..." << std::endl;
  const tune::TunedConfig config = trainer.train();
  tune::TunedExecutor executor(config, sched, direct, engine.scratch());
  Grid2D x_tuned(n, 0.0);
  x_tuned.copy_from(plate.x0);
  WallTimer tuned_timer;
  executor.run_v(x_tuned, plate.b, config.accuracy_index(target));
  const double tuned_seconds = tuned_timer.elapsed();

  std::cout << "\nCentre-column temperature profile (tuned solve):\n";
  for (int r = 0; r <= 8; ++r) {
    const int i = r * (n - 1) / 8;
    const double t = x_tuned(i, n / 2);
    std::cout << "  y=" << format_double(i / (n - 1.0), 2) << "  T="
              << format_double(t, 4) << "  ";
    const int bars = static_cast<int>(
        40.0 * (t - std::min(cold, hot)) / (std::abs(hot - cold) + 1e-300));
    std::cout << std::string(static_cast<std::size_t>(std::max(0, bars)), '#')
              << '\n';
  }
  std::cout << "\n                time        iterations   accuracy\n"
            << "  SOR(w_opt):   " << format_seconds(sor_seconds) << "   "
            << sor_out.iterations << "   " << format_double(accuracy(x_sor), 3)
            << "\n  reference V:  " << format_seconds(ref_seconds) << "   "
            << ref_out.iterations << "   " << format_double(accuracy(x_ref), 3)
            << "\n  tuned V:      " << format_seconds(tuned_seconds)
            << "   (fixed shape)   " << format_double(accuracy(x_tuned), 3)
            << "\n";
  return 0;
}
